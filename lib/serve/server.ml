type stats = { requests : int; shed : int; timeouts : int }

type conn = {
  fd : Unix.file_descr;
  id : int;
  dec : Http.decoder;
  mutable out : string;  (** pending response bytes *)
  mutable out_off : int;
  mutable close_after : bool;  (** close once [out] drains *)
  mutable reading : bool;  (** admitted: false while parked or shedding *)
}

let metric_requests = lazy (Metrics.counter "serve.requests")
let metric_shed = lazy (Metrics.counter "serve.shed")
let metric_timeouts = lazy (Metrics.counter "serve.timeouts")
let metric_latency = lazy (Metrics.histogram "serve.request_us")

(* per-route accounting: registration is get-or-create under a mutex,
   and the route label set is bounded by Router.route_label *)
let route_requests label = Metrics.counter ("serve.requests." ^ label)
let route_latency label = Metrics.histogram ("serve.request_us." ^ label)

(* the flow id of an observation submission is its cell's global index —
   the same id the worker exec span and the coordinator lease carry.
   Parsed only when tracing is armed; any malformed body stays unlinked *)
let observation_flow (r : Http.req) =
  match Jsonl.of_string r.Http.body with
  | Error _ -> None
  | Ok j ->
      Option.map
        (fun c -> c.Journal.index)
        (Option.bind (Jsonl.member "cell" j) Journal.cell_of_json)

let run ~addr ~store ?max_inflight ?max_queue ?read_timeout_ms
    ?queue_timeout_ms ?(stop = Atomic.make false) ?history
    ?(on_tick = fun (_ : int64) -> ()) () =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  match Netaddr.listen addr with
  | Error e -> Error e
  | Ok listen_fd ->
      Unix.set_nonblock listen_fd;
      let adm =
        Admission.create ?max_inflight ?max_queue ?read_timeout_ms
          ?queue_timeout_ms ()
      in
      let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
      let next_id = ref 0 in
      let requests = ref 0 and shed = ref 0 and timeouts = ref 0 in
      let buf = Bytes.create 65536 in
      let retry_headers =
        [ ("retry-after", string_of_int (Admission.retry_after_s adm)) ]
      in
      let close conn =
        Hashtbl.remove conns conn.id;
        Admission.on_close adm ~id:conn.id;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      in
      let enqueue conn resp =
        if conn.out_off > 0 then begin
          (* keep the pending string small: drop the written prefix
             before appending *)
          conn.out <-
            String.sub conn.out conn.out_off
              (String.length conn.out - conn.out_off);
          conn.out_off <- 0
        end;
        conn.out <- conn.out ^ resp
      in
      let flush_out conn =
        let n = String.length conn.out - conn.out_off in
        if n > 0 then
          match Unix.write_substring conn.fd conn.out conn.out_off n with
          | written ->
              conn.out_off <- conn.out_off + written;
              if conn.out_off = String.length conn.out then begin
                conn.out <- "";
                conn.out_off <- 0;
                if conn.close_after then close conn
              end
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            ->
              ()
          | exception Unix.Unix_error (_, _, _) -> close conn
      in
      let serve_requests conn =
        let rec drain () =
          match Http.next conn.dec with
          | `Awaiting -> ()
          | `Error (code, msg) ->
              enqueue conn (Http.response ~status:code ~body:msg ());
              conn.close_after <- true
          | `Req r ->
              let t0 = Mclock.now_ns () in
              let label = Router.route_label r.Http.path in
              let resp = Router.handle ?history store r in
              incr requests;
              Metrics.incr (Lazy.force metric_requests);
              Metrics.incr (route_requests label);
              let us =
                Int64.to_int
                  (Int64.div (Int64.sub (Mclock.now_ns ()) t0) 1_000L)
              in
              Metrics.observe (Lazy.force metric_latency) us;
              Metrics.observe (route_latency label) us;
              if Span.enabled () then begin
                let flow =
                  if String.equal label "observation" then observation_flow r
                  else None
                in
                Span.emit ~cat:"serve" ~name:("req:" ^ label) ~t0_ns:t0
                  ~dur_ns:(Int64.sub (Mclock.now_ns ()) t0)
                  ?flow ()
              end;
              enqueue conn resp;
              (match List.assoc_opt "connection" r.Http.headers with
              | Some v when String.lowercase_ascii v = "close" ->
                  conn.close_after <- true
              | _ -> ());
              if not conn.close_after then drain ()
        in
        drain ();
        flush_out conn
      in
      let read_conn conn =
        match Unix.read conn.fd buf 0 (Bytes.length buf) with
        | 0 -> close conn
        | n ->
            Admission.touch adm ~id:conn.id ~now:(Mclock.now_ns ());
            Http.feed conn.dec buf n;
            serve_requests conn
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            ()
        | exception Unix.Unix_error (_, _, _) -> close conn
      in
      (* no route is known at shed time (the request was never read), so
         shed counters are labelled by admission stage instead *)
      let shed_conn conn ~stage status body =
        incr shed;
        Metrics.incr (Lazy.force metric_shed);
        Metrics.incr (Metrics.counter ("serve.shed." ^ stage));
        enqueue conn (Http.response ~status ~headers:retry_headers ~body ());
        conn.close_after <- true;
        conn.reading <- false;
        flush_out conn
      in
      let accept_all () =
        let rec go () =
          match Unix.accept listen_fd with
          | fd, _ ->
              Unix.set_nonblock fd;
              incr next_id;
              let id = !next_id in
              let conn =
                {
                  fd;
                  id;
                  dec = Http.decoder ();
                  out = "";
                  out_off = 0;
                  close_after = false;
                  reading = false;
                }
              in
              Hashtbl.replace conns id conn;
              (match Admission.on_open adm ~id ~now:(Mclock.now_ns ()) with
              | Admission.Admit -> conn.reading <- true
              | Admission.Park -> ()
              | Admission.Shed ->
                  shed_conn conn ~stage:"accept" 429 "server saturated");
              go ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
            ->
              ()
          | exception Unix.Unix_error (_, _, _) -> ()
        in
        go ()
      in
      let start_ns = Mclock.now_ns () in
      (* seeded one interval back so the first tick snapshots immediately
         (min_int would overflow the subtraction below) *)
      let last_sample = ref (Int64.sub start_ns 1_000_000_000L) in
      let sample_history now =
        match history with
        | None -> ()
        | Some h ->
            (* one snapshot per second of daemon life, bounded by the ring *)
            if Int64.compare (Int64.sub now !last_sample) 1_000_000_000L >= 0
            then begin
              last_sample := now;
              let pct p =
                Option.value ~default:(-1)
                  (Metrics.percentile (Lazy.force metric_latency) p)
              in
              Svhistory.push h
                {
                  Svhistory.t_ms =
                    Int64.to_int (Int64.div (Int64.sub now start_ns) 1_000_000L);
                  requests = !requests;
                  shed = !shed;
                  timeouts = !timeouts;
                  p50_us = pct 50;
                  p99_us = pct 99;
                }
            end
      in
      let tick () =
        let now = Mclock.now_ns () in
        sample_history now;
        List.iter
          (fun id ->
            match Hashtbl.find_opt conns id with
            | Some conn -> conn.reading <- true
            | None -> ())
          (Admission.promote adm ~now);
        List.iter
          (fun id ->
            match Hashtbl.find_opt conns id with
            | Some conn -> shed_conn conn ~stage:"queue" 429 "queued too long"
            | None -> ())
          (Admission.expire adm ~now);
        List.iter
          (fun id ->
            match Hashtbl.find_opt conns id with
            | None -> ()
            | Some conn ->
                if Http.buffered conn.dec > 0 then begin
                  (* slow-loris: a partial request that stopped making
                     progress gets a 408 on its way out *)
                  incr timeouts;
                  Metrics.incr (Lazy.force metric_timeouts);
                  enqueue conn
                    (Http.response ~status:408 ~body:"request timeout" ());
                  conn.close_after <- true;
                  conn.reading <- false;
                  flush_out conn
                end
                else close conn)
          (Admission.stale adm ~now);
        on_tick now
      in
      while not (Atomic.get stop) do
        let reads =
          listen_fd
          :: Hashtbl.fold
               (fun _ c acc -> if c.reading then c.fd :: acc else acc)
               conns []
        in
        let writes =
          Hashtbl.fold
            (fun _ c acc ->
              if String.length c.out > c.out_off then c.fd :: acc else acc)
            conns []
        in
        (match Unix.select reads writes [] 0.05 with
        | readable, writable, _ ->
            if List.mem listen_fd readable then accept_all ();
            let by_fd fd =
              Hashtbl.fold
                (fun _ c acc -> if c.fd = fd then Some c else acc)
                conns None
            in
            List.iter
              (fun fd ->
                if fd <> listen_fd then
                  match by_fd fd with
                  | Some conn when conn.reading -> read_conn conn
                  | _ -> ())
              readable;
            List.iter
              (fun fd ->
                match by_fd fd with Some conn -> flush_out conn | None -> ())
              writable
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        tick ()
      done;
      Hashtbl.iter
        (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Netaddr.cleanup addr;
      Ok { requests = !requests; shed = !shed; timeouts = !timeouts }
