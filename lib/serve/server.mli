(** The serve daemon's select loop.

    Single-threaded and non-blocking, the same event-loop shape as the
    dist {!Coordinator}: one [select] tick (50 ms) multiplexes the
    listener and every connection, each connection owning an
    incremental {!Http} decoder and a pending-output buffer, so one
    slow reader can neither stall the loop nor starve its peers.
    Keep-alive and pipelining are supported; a codec error is answered
    with its status and the connection closed.

    {!Admission} gates every accept: admitted connections are read and
    served, parked ones wait unread in a FIFO until a slot frees, and
    everything beyond the pen is shed immediately with
    [429 + Retry-After] — under overload the daemon degrades to fast,
    explicit refusals rather than growing queues. Each tick also
    promotes parked connections, expires over-age ones (429) and
    reaps stalled admitted ones (408 when a partial request is
    buffered — the slow-loris case — or a quiet close for idle
    keep-alives).

    Counters [serve.requests], [serve.shed], [serve.timeouts] and the
    [serve.request_us] handling-latency histogram land in the global
    {!Metrics} registry, so the daemon's own [/metrics] endpoint
    reports them. Per-route variants ride along: each request also
    bumps [serve.requests.LABEL] and observes
    [serve.request_us.LABEL] for its {!Router.route_label}, and sheds
    are split by admission stage ([serve.shed.accept] /
    [serve.shed.queue] — no route exists before the request is read). *)

type stats = { requests : int; shed : int; timeouts : int }

val run :
  addr:Netaddr.t ->
  store:Svstore.t ->
  ?max_inflight:int ->
  ?max_queue:int ->
  ?read_timeout_ms:int ->
  ?queue_timeout_ms:int ->
  ?stop:bool Atomic.t ->
  ?history:Svhistory.t ->
  ?on_tick:(int64 -> unit) ->
  unit ->
  (stats, string) result
(** Serve until [stop] reads true (polled every tick; the flag may be
    flipped from a signal handler or another domain), then close every
    connection, unlink a unix-socket path and return the tallies.
    [on_tick] runs once per loop iteration with the current monotonic
    time — the watchdog/status hook. [history] arms the metrics
    time-series ring: one snapshot per second of daemon life, served
    at [GET /metrics/history] and rendered into [/report]. *)
