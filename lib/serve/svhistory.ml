type sample = {
  t_ms : int;
  requests : int;
  shed : int;
  timeouts : int;
  p50_us : int;
  p99_us : int;
}

type t = {
  capacity : int;
  ring : sample option array;
  mutable next : int;  (* total pushes; next slot = next mod capacity *)
}

let create ?(capacity = 512) () =
  let capacity = max 1 capacity in
  { capacity; ring = Array.make capacity None; next = 0 }

let push t s =
  t.ring.(t.next mod t.capacity) <- Some s;
  t.next <- t.next + 1

let samples t =
  let n = min t.next t.capacity in
  let first = t.next - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let to_json t =
  let ss = samples t in
  Jsonl.Obj
    [
      ("count", Jsonl.Int (List.length ss));
      ("capacity", Jsonl.Int t.capacity);
      ( "samples",
        Jsonl.List
          (List.map
             (fun s ->
               Jsonl.Obj
                 [
                   ("t_ms", Jsonl.Int s.t_ms);
                   ("requests", Jsonl.Int s.requests);
                   ("shed", Jsonl.Int s.shed);
                   ("timeouts", Jsonl.Int s.timeouts);
                   ("p50_us", Jsonl.Int s.p50_us);
                   ("p99_us", Jsonl.Int s.p99_us);
                 ])
             ss) );
    ]
