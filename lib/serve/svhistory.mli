(** Bounded ring of periodic serve-daemon metrics snapshots.

    The server pushes one sample per second from its tick loop; the
    ring keeps the most recent [capacity] samples (default 512, ~8.5
    minutes at 1 Hz) and drops the oldest beyond that, so the daemon's
    memory stays bounded over arbitrarily long runs. [GET
    /metrics/history] serves {!to_json}; {!Report_html} renders the
    throughput/latency panels from the same samples. *)

type sample = {
  t_ms : int;  (** milliseconds since the server started *)
  requests : int;  (** cumulative requests served *)
  shed : int;  (** cumulative connections shed *)
  timeouts : int;  (** cumulative request timeouts *)
  p50_us : int;  (** request latency p50 so far; -1 before any request *)
  p99_us : int;  (** request latency p99 so far; -1 before any request *)
}

type t

val create : ?capacity:int -> unit -> t
val push : t -> sample -> unit

val samples : t -> sample list
(** Oldest first. *)

val to_json : t -> Jsonl.t
(** [{"count":N,"capacity":C,"samples":[{"t_ms":..,"requests":..,
    "shed":..,"timeouts":..,"p50_us":..,"p99_us":..}, ...]}] with
    samples oldest first. *)
