type t = {
  path : string;
  mutable oc : out_channel;
  kernels : (string, Corpus.entry * string) Hashtbl.t;
  mutable order : string array;  (** submission order of kernel hashes *)
  mutable count : int;
  cell_keys : (string * int * int * string, unit) Hashtbl.t;
  mutable cells_rev : Journal.cell list;
  mutable obs_rev : Triage.observation list;
  cov : Covmap.t;
  mutable cursor : int;  (** next kernel index to hand out as work *)
}

let journal_version = 1
let header_fields = [ ("k", Jsonl.Str "serve"); ("v", Jsonl.Int journal_version) ]

(* ------------------------------------------------------------------ *)
(* Record codecs (same checksummed-JSONL family as lib/store)          *)
(* ------------------------------------------------------------------ *)

let kernel_fields e text = Corpus.entry_fields e @ [ ("text", Jsonl.Str text) ]

let obs_fields ~cell ~obs ~cov =
  [ ("k", Jsonl.Str "obs"); ("cell", Journal.cell_to_json cell) ]
  @ (match obs with
    | None -> []
    | Some o -> [ ("obs", Jsonl.Obj (Triage.observation_fields o)) ])
  @ [ ("cov", Jsonl.List (List.map (fun i -> Jsonl.Int i) cov)) ]

let claim_fields n = [ ("k", Jsonl.Str "claim"); ("n", Jsonl.Int n) ]

(* ------------------------------------------------------------------ *)
(* In-memory application (shared by replay and live mutation)          *)
(* ------------------------------------------------------------------ *)

let push_kernel t e text =
  Hashtbl.replace t.kernels e.Corpus.hash (e, text);
  if t.count = Array.length t.order then
    t.order <-
      Array.append t.order (Array.make (max 16 (Array.length t.order)) "");
  t.order.(t.count) <- e.Corpus.hash;
  t.count <- t.count + 1

let apply_obs t cell obs cov =
  Hashtbl.replace t.cell_keys (Journal.key cell) ();
  t.cells_rev <- cell :: t.cells_rev;
  (match obs with None -> () | Some o -> t.obs_rev <- o :: t.obs_rev);
  Covmap.add_all t.cov cov

let apply fields t =
  let j = Jsonl.Obj fields in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match str "k" with
  | Some "kernel" -> (
      match (Corpus.entry_of_fields fields, str "text") with
      | Some e, Some text ->
          if Hashtbl.mem t.kernels e.Corpus.hash then Error "duplicate kernel"
          else begin
            push_kernel t e text;
            Ok ()
          end
      | _ -> Error "malformed kernel record")
  | Some "obs" -> (
      let cell = Option.bind (Jsonl.member "cell" j) Journal.cell_of_json in
      let obs =
        match Jsonl.member "obs" j with
        | None -> Some None
        | Some o -> Option.map Option.some (Triage.observation_of_json o)
      in
      let cov =
        match Option.bind (Jsonl.member "cov" j) Jsonl.get_list with
        | None -> None
        | Some l ->
            let is = List.filter_map Jsonl.get_int l in
            if List.length is = List.length l then Some is else None
      in
      match (cell, obs, cov) with
      | Some cell, Some obs, Some cov ->
          if Hashtbl.mem t.cell_keys (Journal.key cell) then
            Error "duplicate observation"
          else begin
            ignore (apply_obs t cell obs cov);
            Ok ()
          end
      | _ -> Error "malformed obs record")
  | Some "claim" -> (
      match Option.bind (Jsonl.member "n" j) Jsonl.get_int with
      | Some n when n >= 0 ->
          (* last-wins cursor: claims interleave freely with the other
             record kinds, so replay just keeps the latest position *)
          t.cursor <- n;
          Ok ()
      | _ -> Error "malformed claim record")
  | Some other -> Error (Printf.sprintf "unknown record kind %S" other)
  | None -> Error "record without kind"

(* ------------------------------------------------------------------ *)
(* Open / replay                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let append_line oc fields =
  output_string oc (Jsonl.encode_line fields);
  output_char oc '\n';
  flush oc

let fresh path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  append_line oc header_fields;
  oc

let empty path oc =
  {
    path;
    oc;
    kernels = Hashtbl.create 64;
    order = Array.make 16 "";
    count = 0;
    cell_keys = Hashtbl.create 64;
    cells_rev = [];
    obs_rev = [];
    cov = Covmap.create ();
    cursor = 0;
  }

let open_ ~path =
  if not (Sys.file_exists path) then
    match fresh path with
    | oc -> Ok (empty path oc)
    | exception Sys_error m -> Error m
  else
    match read_file path with
    | exception Sys_error m -> Error m
    | contents -> (
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' contents)
        in
        match lines with
        | [] -> (
            match fresh path with
            | oc -> Ok (empty path oc)
            | exception Sys_error m -> Error m)
        | first :: rest -> (
            match Jsonl.decode_line first with
            | Error e -> Error (Printf.sprintf "serve journal header: %s" e)
            | Ok fields when fields <> header_fields ->
                Error "serve journal header: wrong kind or version"
            | Ok _ -> (
                let t = empty path stdout in
                let n = List.length rest in
                (* like Journal.load: damage is tolerated only as one
                   torn final line; anything earlier is corruption *)
                let rec replay i clean = function
                  | [] -> Ok (clean, false)
                  | line :: more -> (
                      let torn msg =
                        if i = n - 1 then Ok (clean, true)
                        else
                          Error
                            (Printf.sprintf "serve journal record %d: %s"
                               (i + 1) msg)
                      in
                      match Jsonl.decode_line line with
                      | Error e -> torn e
                      | Ok fields -> (
                          match apply fields t with
                          | Error e -> torn e
                          | Ok () -> replay (i + 1) (line :: clean) more))
                in
                match replay 0 [] rest with
                | Error e -> Error e
                | Ok (clean_rev, torn) -> (
                    (* a torn tail is rewritten away before reopening
                       for append, so the file is always a clean prefix *)
                    (if torn then
                       let tmp = path ^ ".tmp" in
                       let oc =
                         open_out_gen
                           [ Open_wronly; Open_creat; Open_trunc ]
                           0o644 tmp
                       in
                       output_string oc (Jsonl.encode_line header_fields);
                       output_char oc '\n';
                       List.iter
                         (fun l ->
                           output_string oc l;
                           output_char oc '\n')
                         (List.rev clean_rev);
                       close_out oc;
                       Sys.rename tmp path);
                    match
                      open_out_gen [ Open_wronly; Open_append ] 0o644 path
                    with
                    | oc ->
                        t.oc <- oc;
                        Ok t
                    | exception Sys_error m -> Error m))))

let close t = close_out_noerr t.oc

(* ------------------------------------------------------------------ *)
(* Mutations: journal first, then apply — a record on disk is the      *)
(* commit point, so a kill at any instant replays to this state        *)
(* ------------------------------------------------------------------ *)

let submit_kernel t e text =
  if not (String.equal (Corpus.hash_text text) e.Corpus.hash) then
    Error "kernel text does not hash to its declared address"
  else if Hashtbl.mem t.kernels e.Corpus.hash then Ok false
  else begin
    append_line t.oc (kernel_fields e text);
    push_kernel t e text;
    Ok true
  end

let report_observation t ~cell ~obs ~cov =
  if List.exists (fun i -> i < 0 || i >= Covmap.size) cov then
    Error "coverage index out of range"
  else if Hashtbl.mem t.cell_keys (Journal.key cell) then Ok (false, 0)
  else begin
    append_line t.oc (obs_fields ~cell ~obs ~cov);
    Ok (true, apply_obs t cell obs cov)
  end

let claim t =
  if t.cursor >= t.count then None
  else begin
    let hash = t.order.(t.cursor) in
    append_line t.oc (claim_fields (t.cursor + 1));
    t.cursor <- t.cursor + 1;
    Hashtbl.find_opt t.kernels hash
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let buckets t = Triage.of_observations (List.rev t.obs_rev)
let coverage_count t = Covmap.count t.cov
let coverage_hex t = Covmap.to_hex t.cov

let corpus t =
  List.init t.count (fun i -> fst (Hashtbl.find t.kernels t.order.(i)))

let kernel t hash = Option.map snd (Hashtbl.find_opt t.kernels hash)
let cells t = List.rev t.cells_rev
let kernel_count t = t.count
let cell_count t = List.length t.cells_rev
let cursor t = t.cursor

let header t =
  Journal.make_header ~campaign:"serve" ~ident:[]
    ~scale:
      [
        ("kernels", string_of_int t.count);
        ("cells", string_of_int (cell_count t));
      ]
