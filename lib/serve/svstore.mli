(** The serve daemon's state: corpus, coverage, observations — all
    behind one append-only journal.

    Every mutation writes one checksummed JSONL record (the {!Jsonl}
    line discipline the campaign journal and corpus index use) and
    flushes before touching memory, so the journal is the state: a
    daemon killed with [-9] and reopened replays to a store whose
    query responses are byte-identical to the moment of death. Three
    record kinds follow the header line:

    - [kernel] — a corpus submission: {!Corpus.entry_fields} plus the
      full kernel text (the store is self-contained; no side files);
    - [obs] — one reported cell ({!Journal.cell_to_json}), optionally
      a classified {!Triage.observation}, and the cell's coverage
      indices;
    - [claim] — the work cursor after a claim, last-wins, so replay
      never re-issues work already handed out.

    Dedup is part of the contract: kernels dedup by content hash,
    observations by {!Journal.key}, making concurrent or retried
    submissions idempotent. A torn final line (the kill landed
    mid-append) is dropped and the clean prefix rewritten, exactly
    like {!Journal.append}. *)

type t

val open_ : path:string -> (t, string) result
(** Create (fresh header) or replay an existing journal. Fails on
    damage anywhere but the final line. *)

val close : t -> unit

val submit_kernel : t -> Corpus.entry -> string -> (bool, string) result
(** [Ok true] if the kernel is new, [Ok false] on a duplicate hash;
    [Error] when the text does not hash to the entry's address. *)

val report_observation :
  t ->
  cell:Journal.cell ->
  obs:Triage.observation option ->
  cov:int list ->
  (bool * int, string) result
(** [(fresh, new coverage bits)]; a duplicate cell key reports
    [(false, 0)] without journaling. [Error] on an out-of-range
    coverage index. *)

val claim : t -> (Corpus.entry * string) option
(** The next unclaimed kernel in submission order, advancing (and
    journaling) the cursor; [None] when the corpus is exhausted. *)

val buckets : t -> Triage.bucket list
(** Distinct bugs from every reported observation, in arrival order —
    the same dedup core ({!Triage.of_observations}) the offline triage
    path uses, so a serve campaign and a journal triage agree. *)

val coverage_count : t -> int
val coverage_hex : t -> string

val corpus : t -> Corpus.entry list
(** Submission order. *)

val kernel : t -> string -> string option
(** Kernel text by content hash. *)

val cells : t -> Journal.cell list
(** Reported cells in arrival order — what [/report] renders. *)

val kernel_count : t -> int
val cell_count : t -> int
val cursor : t -> int

val header : t -> Journal.header
(** A synthetic ["serve"] campaign header for {!Report_html.render}. *)
