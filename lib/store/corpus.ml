type entry = {
  hash : string;
  seed : int;
  mode : string;
  cls : string;
  config : int;
  opt : string;
}

let hash_text text = Digest.to_hex (Digest.string text)
let kernel_path ~dir ~hash = Filename.concat dir (hash ^ ".cl")
let index_path dir = Filename.concat dir "index.jsonl"

let entry_fields e =
  [
    ("k", Jsonl.Str "kernel");
    ("hash", Jsonl.Str e.hash);
    ("seed", Jsonl.Int e.seed);
    ("mode", Jsonl.Str e.mode);
    ("cls", Jsonl.Str e.cls);
    ("config", Jsonl.Int e.config);
    ("opt", Jsonl.Str e.opt);
  ]

let entry_of_fields fields =
  let j = Jsonl.Obj fields in
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match (str "hash", int "seed", str "mode", str "cls", int "config", str "opt") with
  | Some hash, Some seed, Some mode, Some cls, Some config, Some opt ->
      Some { hash; seed; mode; cls; config; opt }
  | _ -> None

let dedup_key e = (e.hash, e.cls, e.config, e.opt)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let index ~dir =
  let path = index_path dir in
  if not (Sys.file_exists path) then Ok []
  else
    match read_file path with
    | exception Sys_error m -> Error m
    | contents ->
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' contents)
        in
        let n = List.length lines in
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              let bad msg =
                (* like the journal: tolerate only a torn final line *)
                if i = n - 1 then Ok (List.rev acc)
                else Error (Printf.sprintf "corpus index entry %d: %s" (i + 1) msg)
              in
              match Jsonl.decode_line line with
              | Error e -> bad e
              | Ok fields -> (
                  match entry_of_fields fields with
                  | None -> bad "malformed entry"
                  | Some e -> go (i + 1) (e :: acc) rest))
        in
        go 0 [] lines

let add_all ~dir pairs =
  match
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    index ~dir
  with
  | exception Sys_error m -> Error m
  | Error m -> Error m
  | Ok existing -> (
      let seen = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace seen (dedup_key e) ()) existing;
      match
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644
            (index_path dir)
        in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            let added = ref 0 in
            List.iter
              (fun (e, text) ->
                let path = kernel_path ~dir ~hash:e.hash in
                if not (Sys.file_exists path) then write_file_atomic path text;
                if not (Hashtbl.mem seen (dedup_key e)) then begin
                  Hashtbl.replace seen (dedup_key e) ();
                  output_string oc (Jsonl.encode_line (entry_fields e));
                  output_char oc '\n';
                  incr added
                end)
              pairs;
            flush oc;
            !added)
      with
      | exception Sys_error m -> Error m
      | added -> Ok added)

let read_kernel ~dir ~hash =
  match read_file (kernel_path ~dir ~hash) with
  | exception Sys_error m -> Error m
  | contents -> Ok contents

let fold ~dir ~init ~f =
  match index ~dir with
  | Error m -> Error m
  | Ok entries -> (
      let cache = Hashtbl.create 64 in
      let text_of hash =
        match Hashtbl.find_opt cache hash with
        | Some t -> t
        | None ->
            let t = read_file (kernel_path ~dir ~hash) in
            Hashtbl.add cache hash t;
            t
      in
      match
        List.fold_left (fun acc e -> f acc e (text_of e.hash)) init entries
      with
      | exception Sys_error m -> Error m
      | acc -> Ok acc)

let load_all ~dir =
  Result.map List.rev
    (fold ~dir ~init:[] ~f:(fun acc e text -> (e, text) :: acc))

let verify ~dir e =
  match read_kernel ~dir ~hash:e.hash with
  | Error m -> Error m
  | Ok text ->
      let h = hash_text text in
      if String.equal h e.hash then Ok ()
      else
        Error
          (Printf.sprintf "content hash %s does not match address %s" h e.hash)

(* ------------------------------------------------------------------ *)
(* Fsck                                                                *)
(* ------------------------------------------------------------------ *)

type damage =
  | Hash_mismatch of { hash : string; actual : string }
  | Missing_kernel of string
  | Orphan_kernel of string
  | Duplicate_entry of { hash : string; cls : string; config : int; opt : string }
  | Index_unreadable of string

let damage_to_string = function
  | Hash_mismatch { hash; actual } ->
      Printf.sprintf "%s.cl: content hashes to %s, not its address" hash actual
  | Missing_kernel hash ->
      Printf.sprintf "%s.cl: indexed but missing on disk" hash
  | Orphan_kernel file ->
      Printf.sprintf "%s: kernel file not referenced by the index" file
  | Duplicate_entry { hash; cls; config; opt } ->
      Printf.sprintf "index: duplicate entry (%s, %s, %d, %s)"
        (String.sub hash 0 (min 12 (String.length hash)))
        cls config opt
  | Index_unreadable msg -> Printf.sprintf "index unreadable: %s" msg

let fsck ~dir =
  if not (Sys.file_exists dir) then [ Index_unreadable "corpus directory missing" ]
  else
    match index ~dir with
    | Error m -> [ Index_unreadable m ]
    | Ok entries ->
        let damage = ref [] in
        let push d = damage := d :: !damage in
        (* index drift: the same dedup key journalled twice means
           add_all's invariant was violated (hand edits, merge damage) *)
        let seen = Hashtbl.create 64 in
        List.iter
          (fun e ->
            if Hashtbl.mem seen (dedup_key e) then
              push
                (Duplicate_entry
                   { hash = e.hash; cls = e.cls; config = e.config; opt = e.opt })
            else Hashtbl.replace seen (dedup_key e) ())
          entries;
        (* content addresses: every indexed kernel present and honest,
           each distinct hash checked once *)
        let checked = Hashtbl.create 64 in
        List.iter
          (fun e ->
            if not (Hashtbl.mem checked e.hash) then begin
              Hashtbl.replace checked e.hash ();
              match read_file (kernel_path ~dir ~hash:e.hash) with
              | exception Sys_error _ -> push (Missing_kernel e.hash)
              | text ->
                  let actual = hash_text text in
                  if not (String.equal actual e.hash) then
                    push (Hash_mismatch { hash = e.hash; actual })
            end)
          entries;
        (* orphans: kernel files the index does not know about *)
        (match Sys.readdir dir with
        | exception Sys_error m -> push (Index_unreadable m)
        | files ->
            let files = Array.to_list files in
            List.iter
              (fun f ->
                if Filename.check_suffix f ".cl" then
                  let hash = Filename.chop_suffix f ".cl" in
                  if not (Hashtbl.mem checked hash) then push (Orphan_kernel f))
              (List.sort compare files));
        List.rev !damage
