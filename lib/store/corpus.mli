(** Content-addressed corpus of interesting kernels.

    Wrong-code, crash and build-failure witnesses from a campaign are
    kept as OpenCL C text ([Pp.program_to_string]) under their content
    hash — [DIR/<md5hex>.cl] — so the same kernel surfacing in many
    campaigns, configurations or resumed runs is stored exactly once.
    A checksummed JSONL index ([DIR/index.jsonl]) records one line per
    (kernel, classification, configuration, opt level): the provenance
    needed to regenerate the kernel deterministically from its seed and
    re-run it against the configuration that misbehaved. *)

type entry = {
  hash : string;  (** MD5 hex of the kernel text = file basename *)
  seed : int;  (** generator seed: the kernel's deterministic provenance *)
  mode : string;  (** generation mode name *)
  cls : string;  (** "wrong-code" | "crash" | "build-failure" *)
  config : int;
  opt : string;  (** ["-"] | ["+"] *)
}

val hash_text : string -> string
(** MD5 hex of the kernel text — the content address. *)

val entry_fields : entry -> (string * Jsonl.t) list
(** The entry's canonical JSON fields (kind tag ["kernel"] first) —
    one corpus index line minus the checksum, also the serve API's
    kernel encoding. *)

val entry_of_fields : (string * Jsonl.t) list -> entry option
(** Inverse of {!entry_fields}; ignores unknown fields. *)

val kernel_path : dir:string -> hash:string -> string

val add_all : dir:string -> (entry * string) list -> (int, string) result
(** Store each (entry, kernel text) pair: the kernel file is written if
    absent (atomically, via a temp file), the index gains a line per new
    (hash, cls, config, opt). Returns how many index entries were new. *)

val index : dir:string -> (entry list, string) result
(** All index entries, insertion order; a torn final line is dropped.
    A missing corpus reads as empty. *)

val read_kernel : dir:string -> hash:string -> (string, string) result

val fold :
  dir:string ->
  init:'a ->
  f:('a -> entry -> string -> 'a) ->
  ('a, string) result
(** One pass over the corpus: [f] receives every index entry together
    with its kernel text, in index order. Kernel files are read once
    per distinct hash (entries sharing a kernel share the read), so
    consumers no longer re-scan the index and then re-open each file
    per entry. Fails on the first unreadable kernel. *)

val load_all : dir:string -> ((entry * string) list, string) result
(** [fold] specialised to collecting [(entry, kernel text)] pairs in
    index order — the one-call replacement for the
    [index]-then-[read_kernel] two-pass pattern. *)

val verify : dir:string -> entry -> (unit, string) result
(** Re-hash the stored kernel text and compare with the content address. *)

(** One inconsistency found by {!fsck}. *)
type damage =
  | Hash_mismatch of { hash : string; actual : string }
      (** stored text no longer hashes to its address *)
  | Missing_kernel of string  (** indexed hash with no [.cl] file *)
  | Orphan_kernel of string  (** [.cl] file no index entry references *)
  | Duplicate_entry of { hash : string; cls : string; config : int; opt : string }
      (** the same dedup key indexed twice *)
  | Index_unreadable of string

val damage_to_string : damage -> string

val fsck : dir:string -> damage list
(** Full corpus consistency check — duplicate index keys, then content
    addresses (each distinct hash re-hashed once), then orphan kernel
    files in directory-sorted order. Empty list means healthy; a healthy
    check is read-only and touches each kernel file once. *)
