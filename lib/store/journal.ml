type header = {
  version : int;
  campaign : string;
  ident : (string * string) list;
  scale : (string * string) list;
}

let current_version = 1

let sort_params = List.sort (fun (a, _) (b, _) -> String.compare a b)

let make_header ~campaign ~ident ~scale =
  { version = current_version; campaign; ident = sort_params ident;
    scale = sort_params scale }

type cell = {
  index : int;
  seed : int;
  mode : string;
  config : int;
  opt : string;
  outcomes : Outcome.t list;
  note : string;
}

let key c = (c.mode, c.seed, c.config, c.opt)

let index_cells cells =
  let tbl = Hashtbl.create (max 16 (List.length cells)) in
  List.iter (fun c -> Hashtbl.replace tbl (key c) c) cells;
  tbl

type error = Io of string | Corrupt of string | Mismatch of string

let error_to_string = function
  | Io m -> "journal: " ^ m
  | Corrupt m -> "journal: corrupt: " ^ m
  | Mismatch m -> "journal: parameter mismatch: " ^ m

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)
(* ------------------------------------------------------------------ *)

let outcome_to_json (o : Outcome.t) =
  let tagged v = Jsonl.Obj [ ("t", Jsonl.Str (Outcome.short_tag o)); ("v", Jsonl.Str v) ] in
  match o with
  | Outcome.Success v | Outcome.Build_failure v | Outcome.Crash v
  | Outcome.Machine_crash v | Outcome.Ub v ->
      tagged v
  | Outcome.Timeout -> Jsonl.Obj [ ("t", Jsonl.Str "to") ]

let outcome_of_json j =
  let v () = Option.bind (Jsonl.member "v" j) Jsonl.get_str in
  match Option.bind (Jsonl.member "t" j) Jsonl.get_str with
  | Some "to" -> Some Outcome.Timeout
  | Some tag -> (
      match (tag, v ()) with
      | "ok", Some v -> Some (Outcome.Success v)
      | "bf", Some v -> Some (Outcome.Build_failure v)
      | "c", Some v -> Some (Outcome.Crash v)
      | "mc", Some v -> Some (Outcome.Machine_crash v)
      | "ub", Some v -> Some (Outcome.Ub v)
      | _ -> None)
  | None -> None

let cell_fields c =
  [
    ("k", Jsonl.Str "cell");
    ("i", Jsonl.Int c.index);
    ("seed", Jsonl.Int c.seed);
    ("mode", Jsonl.Str c.mode);
    ("config", Jsonl.Int c.config);
    ("opt", Jsonl.Str c.opt);
    ("out", Jsonl.List (List.map outcome_to_json c.outcomes));
    ("note", Jsonl.Str c.note);
  ]

let cell_of_fields fields =
  let j = Jsonl.Obj fields in
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match (int "i", int "seed", str "mode", int "config", str "opt", str "note") with
  | Some index, Some seed, Some mode, Some config, Some opt, Some note -> (
      match Jsonl.member "out" j with
      | Some (Jsonl.List outs) ->
          let outcomes = List.filter_map outcome_of_json outs in
          if List.length outcomes <> List.length outs then None
          else Some { index; seed; mode; config; opt; outcomes; note }
      | _ -> None)
  | _ -> None

let cell_to_json c = Jsonl.Obj (cell_fields c)

let cell_of_json = function
  | Jsonl.Obj fields -> cell_of_fields fields
  | _ -> None

let params_to_json ps = Jsonl.Obj (List.map (fun (k, v) -> (k, Jsonl.Str v)) ps)

let params_of_json = function
  | Some (Jsonl.Obj fields) ->
      let strs =
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Jsonl.get_str v))
          fields
      in
      if List.length strs = List.length fields then Some strs else None
  | _ -> None

let header_fields h =
  [
    ("k", Jsonl.Str "header");
    ("version", Jsonl.Int h.version);
    ("campaign", Jsonl.Str h.campaign);
    ("ident", params_to_json h.ident);
    ("scale", params_to_json h.scale);
  ]

let header_of_fields fields =
  let j = Jsonl.Obj fields in
  match
    ( Option.bind (Jsonl.member "version" j) Jsonl.get_int,
      Option.bind (Jsonl.member "campaign" j) Jsonl.get_str,
      params_of_json (Jsonl.member "ident" j),
      params_of_json (Jsonl.member "scale" j) )
  with
  | Some version, Some campaign, Some ident, Some scale ->
      Some { version; campaign; ident = sort_params ident; scale = sort_params scale }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      match String.split_on_char '\n' contents with
      | [] -> []
      | parts -> (
          (* a trailing newline yields one final "" element; drop it *)
          match List.rev parts with
          | "" :: rev -> List.rev rev
          | _ -> parts))

let load ~path =
  match read_lines path with
  | exception Sys_error m -> Error (Io m)
  | [] -> Error (Corrupt "empty file")
  | header_line :: cell_lines -> (
      match Jsonl.decode_line header_line with
      | Error e -> Error (Corrupt ("header: " ^ e))
      | Ok fields
        when Jsonl.member "k" (Jsonl.Obj fields) <> Some (Jsonl.Str "header") ->
          Error (Corrupt "first record is not a header")
      | Ok fields -> (
          match header_of_fields fields with
          | None -> Error (Corrupt "malformed header")
          | Some header ->
              let n = List.length cell_lines in
              let rec go i acc = function
                | [] -> Ok (header, List.rev acc, false)
                | line :: rest -> (
                    let bad msg =
                      (* damage is tolerated only at the very tail: a torn
                         final line is the expected crash artefact, damage
                         before it means the file cannot be trusted *)
                      if i = n - 1 then Ok (header, List.rev acc, true)
                      else
                        Error
                          (Corrupt (Printf.sprintf "record %d: %s" (i + 1) msg))
                    in
                    match Jsonl.decode_line line with
                    | Error e -> bad e
                    | Ok fields -> (
                        match cell_of_fields fields with
                        | None -> bad "malformed cell record"
                        | Some c -> go (i + 1) (c :: acc) rest))
              in
              go 0 [] cell_lines))

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

type writer = { oc : out_channel; rename_to : string option; tmp : string }

let open_writer ~path ~rename_to header =
  let oc = open_out_bin path in
  output_string oc (Jsonl.encode_line (header_fields header));
  output_char oc '\n';
  flush oc;
  { oc; rename_to; tmp = path }

let create ~path header = open_writer ~path ~rename_to:None header

let header_mismatch requested found =
  let show ps =
    String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) ps)
  in
  if found.version <> requested.version then
    Some
      (Printf.sprintf "journal version %d, this build writes %d" found.version
         requested.version)
  else if not (String.equal found.campaign requested.campaign) then
    Some
      (Printf.sprintf "journal is for %s, requested %s" found.campaign
         requested.campaign)
  else if found.ident <> requested.ident then
    Some
      (Printf.sprintf "journal identity {%s} differs from requested {%s}"
         (show found.ident) (show requested.ident))
  else None

let resume ~path header =
  if not (Sys.file_exists path) then Ok (create ~path header, [])
  else
    match load ~path with
    | Error e -> Error e
    | Ok (found, cells, _truncated) -> (
        match header_mismatch header found with
        | Some msg -> Error (Mismatch msg)
        | None ->
            let tmp = path ^ ".tmp" in
            Ok (open_writer ~path:tmp ~rename_to:(Some path) header, cells))

let append ~path header =
  if not (Sys.file_exists path) then
    match create ~path header with
    | w -> Ok (w, [])
    | exception Sys_error m -> Error (Io m)
  else
    match load ~path with
    | Error e -> Error e
    | Ok (found, cells, truncated) -> (
        match header_mismatch header found with
        | Some msg -> Error (Mismatch msg)
        | None -> (
            try
              if truncated then begin
                (* appending after a torn final line would splice records
                   together; rewrite the good prefix instead *)
                let w = create ~path header in
                List.iter
                  (fun c ->
                    output_string w.oc (Jsonl.encode_line (cell_fields c));
                    output_char w.oc '\n')
                  cells;
                flush w.oc;
                Ok (w, cells)
              end
              else
                let oc =
                  open_out_gen
                    [ Open_wronly; Open_append; Open_binary ]
                    0o644 path
                in
                Ok ({ oc; rename_to = None; tmp = path }, cells)
            with Sys_error m -> Error (Io m)))

let write_cell w c =
  Span.with_ ~cat:"persist" "journal.append" @@ fun () ->
  output_string w.oc (Jsonl.encode_line (cell_fields c));
  output_char w.oc '\n';
  flush w.oc

let commit w =
  close_out w.oc;
  match w.rename_to with None -> () | Some path -> Sys.rename w.tmp path
