(** Crash-safe, append-only campaign result journal.

    One JSONL file per campaign run: a versioned header line carrying the
    campaign's parameters, then one self-describing, checksummed record
    per completed cell, appended and flushed in deterministic task order
    as the execution pool completes cells. A [kill -9] therefore loses at
    most the in-flight cells: the file is a clean record prefix plus at
    worst one torn final line, which {!load} discards instead of failing.

    Parameters split into {b identity} (seed0, fuel, configurations,
    modes, per-cell variant counts — anything that changes a cell's key
    or outcome) and {b scale} (sample sizes like [-n]). Resume rejects a
    journal whose identity differs from the requested run but accepts a
    different scale: continuing an [-n 1] journal at [-n 2] is exactly
    the "grow the campaign" workflow, because a smaller run's cell set is
    a subset of a larger one's at the same identity.

    Resume rewrites rather than appends: replayed and newly-run cells
    stream to [FILE.tmp] in the {e new} run's task order and the file is
    atomically renamed over the journal on {!commit}. That is what makes
    a resumed journal byte-identical to an uninterrupted run's, and it
    keeps the original journal intact if the resumed run crashes too. *)

type header = {
  version : int;
  campaign : string;  (** "table1" | "table3" | "table4" | "table5" *)
  ident : (string * string) list;  (** sorted; must match to resume *)
  scale : (string * string) list;  (** recorded, not compared *)
}

val make_header :
  campaign:string ->
  ident:(string * string) list ->
  scale:(string * string) list ->
  header
(** Sorts both parameter lists by key and stamps the current version. *)

type cell = {
  index : int;  (** position in the run's deterministic task order *)
  seed : int;  (** generator seed of the kernel / EMI base (0: none) *)
  mode : string;  (** generation mode, or benchmark name for table3 *)
  config : int;  (** configuration id *)
  opt : string;  (** ["-"] | ["+"] | ["*"] (both levels in [outcomes]) *)
  outcomes : Outcome.t list;
      (** the cell's full outcomes — enough to recompute the table *)
  note : string;  (** campaign-specific payload (table3 result code) *)
}

val key : cell -> string * int * int * string
(** [(mode, seed, config, opt)] — the resume identity of a cell. *)

val cell_to_json : cell -> Jsonl.t
(** The cell's canonical record object — the same encoding a journal
    line carries (minus the line checksum). Shared by the distributed
    fabric's wire protocol so a cell has exactly one serialised form. *)

val cell_of_json : Jsonl.t -> cell option
(** Inverse of {!cell_to_json}; [None] on any malformed field. *)

val index_cells : cell list -> (string * int * int * string, cell) Hashtbl.t

type error =
  | Io of string
  | Corrupt of string  (** damage before the final record *)
  | Mismatch of string  (** header identity differs *)

val error_to_string : error -> string

type writer

val create : path:string -> header -> writer
(** Fresh journal: truncates [path], writes the header, flushes. *)

val resume : path:string -> header -> (writer * cell list, error) result
(** Validate the journal at [path] against [header] (version, campaign
    and identity parameters must match; a torn final line is discarded)
    and return its cells plus a writer on [path.tmp] carrying the new
    header. A missing file degrades to {!create} with no cells. *)

val append : path:string -> header -> (writer * cell list, error) result
(** Validate like {!resume}, but return a writer that appends to [path]
    {e in place} — every {!write_cell} is immediately durable in the
    file itself, with no commit-time rename. This is the scratch-journal
    mode of the distributed fabric: cells land in arrival order (not
    task order), so the file is a recovery record for {!load}, never a
    byte-comparable artefact. A torn final line is dropped by rewriting
    the good prefix; a missing file degrades to {!create}. *)

val write_cell : writer -> cell -> unit
(** Append one record and flush — the crash-safety point. *)

val commit : writer -> unit
(** Close, and for a resume writer atomically rename over the journal. *)

val load : path:string -> (header * cell list * bool, error) result
(** All valid records; the flag reports a discarded torn final line. *)
