type bucket = {
  cls : string;
  config : int;
  opt : string;
  signature : string;
  cells : int;
  kernels : int;
  exemplar_seed : int;
  exemplar_mode : string;
  exemplar_hash : string;
}

(* the named trigger conditions of the section-6 fault models; counts and
   digests are deliberately excluded so that two kernels tripping the same
   fault land in the same bucket *)
let signature_of_features (f : Features.t) =
  let flags =
    [
      ("char-first-struct", f.Features.char_first_struct);
      ("union-struct-field", f.Features.union_with_struct_field);
      ("vector-in-struct", f.Features.vector_in_struct);
      ("vector-logical", f.Features.uses_vector_logical);
      ("barrier-in-callee", f.Features.barrier_in_callee);
      ("barrier-in-loop", f.Features.barrier_in_loop);
      ("mixes-int-size_t", f.Features.mixes_int_size_t);
      ("while-true", f.Features.while_true);
      ("whole-struct-assign", f.Features.whole_struct_assign);
      ("comma", f.Features.uses_comma);
      ("atomics", f.Features.uses_atomics);
    ]
  in
  match List.filter_map (fun (n, b) -> if b then Some n else None) flags with
  | [] -> "plain"
  | active -> String.concat "," active

let cls_of_bucket = function
  | Majority.B_wrong -> Some "wrong-code"
  | Majority.B_bf -> Some "build-failure"
  | Majority.B_crash -> Some "crash"
  | Majority.B_ok | Majority.B_timeout -> None

type observation = {
  o_cls : string;
  o_config : int;
  o_opt : string;
  o_signature : string;
  o_seed : int;
  o_mode : string;
  o_hash : string;
}

(* the wire/journal encoding of an observation, used by the serve
   daemon's journal and its /observation endpoint *)
let observation_fields (o : observation) =
  [
    ("cls", Jsonl.Str o.o_cls);
    ("config", Jsonl.Int o.o_config);
    ("opt", Jsonl.Str o.o_opt);
    ("sig", Jsonl.Str o.o_signature);
    ("seed", Jsonl.Int o.o_seed);
    ("mode", Jsonl.Str o.o_mode);
    ("hash", Jsonl.Str o.o_hash);
  ]

let observation_of_json j =
  let int name = Option.bind (Jsonl.member name j) Jsonl.get_int in
  let str name = Option.bind (Jsonl.member name j) Jsonl.get_str in
  match
    ( str "cls",
      int "config",
      str "opt",
      str "sig",
      int "seed",
      str "mode",
      str "hash" )
  with
  | ( Some o_cls,
      Some o_config,
      Some o_opt,
      Some o_signature,
      Some o_seed,
      Some o_mode,
      Some o_hash ) ->
      Some { o_cls; o_config; o_opt; o_signature; o_seed; o_mode; o_hash }
  | _ -> None

let bucket_to_json (b : bucket) =
  Jsonl.Obj
    [
      ("cls", Jsonl.Str b.cls);
      ("config", Jsonl.Int b.config);
      ("opt", Jsonl.Str b.opt);
      ("sig", Jsonl.Str b.signature);
      ("cells", Jsonl.Int b.cells);
      ("kernels", Jsonl.Int b.kernels);
      ("exemplar_seed", Jsonl.Int b.exemplar_seed);
      ("exemplar_mode", Jsonl.Str b.exemplar_mode);
      ("exemplar_hash", Jsonl.Str b.exemplar_hash);
    ]

(* the dedup core shared by the journal path and the fuzzing campaign:
   accumulate buckets in observation order so exemplars are the first
   witnesses encountered, then sort by key *)
let of_observations (obs : observation list) =
  let buckets = Hashtbl.create 32 in
  let seen_kernels = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun o ->
      let key = (o.o_cls, o.o_config, o.o_opt, o.o_signature) in
      let fresh_kernel =
        not (Hashtbl.mem seen_kernels (key, o.o_mode, o.o_seed))
      in
      if fresh_kernel then Hashtbl.add seen_kernels (key, o.o_mode, o.o_seed) ();
      match Hashtbl.find_opt buckets key with
      | None ->
          order := key :: !order;
          Hashtbl.add buckets key
            {
              cls = o.o_cls;
              config = o.o_config;
              opt = o.o_opt;
              signature = o.o_signature;
              cells = 1;
              kernels = 1;
              exemplar_seed = o.o_seed;
              exemplar_mode = o.o_mode;
              exemplar_hash = o.o_hash;
            }
      | Some b ->
          Hashtbl.replace buckets key
            {
              b with
              cells = b.cells + 1;
              kernels = (b.kernels + if fresh_kernel then 1 else 0);
            })
    obs;
  let bs = List.rev_map (Hashtbl.find buckets) !order in
  List.sort
    (fun a b ->
      compare
        (a.cls, a.config, a.opt, a.signature)
        (b.cls, b.config, b.opt, b.signature))
    bs

exception Triage_error of string

(* one (config, opt, outcome) observation of a kernel; table1 records carry
   both opt levels in a single journal cell and are split here *)
let logical_cells (c : Journal.cell) =
  match (c.Journal.opt, c.Journal.outcomes) with
  | ("-" | "+"), [ o ] -> [ (c.Journal.config, c.Journal.opt, o) ]
  | "*", [ off; on ] -> [ (c.Journal.config, "-", off); (c.Journal.config, "+", on) ]
  | _ ->
      raise
        (Triage_error
           (Printf.sprintf "malformed record for seed %d (opt %s, %d outcomes)"
              c.Journal.seed c.Journal.opt
              (List.length c.Journal.outcomes)))

let regenerate ~mode ~seed =
  match Gen_config.mode_of_string mode with
  | None -> raise (Triage_error (Printf.sprintf "unknown generation mode %S" mode))
  | Some m ->
      let tc, _ = Generate.generate ~cfg:(Gen_config.scaled m) ~seed () in
      tc

let of_journal (h : Journal.header) (cells : Journal.cell list) =
  match h.Journal.campaign with
  | "table4" | "table1" -> (
      try
        (* majority vote per kernel over all its journalled outcomes, the
           same vote the campaign tables take *)
        let votes = Hashtbl.create 64 in
        List.iter
          (fun (c : Journal.cell) ->
            let k = (c.Journal.mode, c.Journal.seed) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt votes k) in
            Hashtbl.replace votes k (prev @ List.map (fun (_, _, o) -> o) (logical_cells c)))
          cells;
        let kernel_info = Hashtbl.create 64 in
        let info_of mode seed =
          match Hashtbl.find_opt kernel_info (mode, seed) with
          | Some v -> v
          | None ->
              let tc = regenerate ~mode ~seed in
              let v =
                ( signature_of_features (Features.of_testcase tc),
                  Corpus.hash_text (Pp.program_to_string tc.Ast.prog) )
              in
              Hashtbl.add kernel_info (mode, seed) v;
              v
        in
        (* flatten the journal into classified observations, in journal
           order, and hand them to the shared dedup core *)
        let obs =
          List.concat_map
            (fun (c : Journal.cell) ->
              let mode = c.Journal.mode and seed = c.Journal.seed in
              let majority =
                Majority.majority_output (Hashtbl.find votes (mode, seed))
              in
              List.filter_map
                (fun (config, opt, o) ->
                  match cls_of_bucket (Majority.bucket_of ~majority o) with
                  | None -> None
                  | Some cls ->
                      let signature, hash = info_of mode seed in
                      Some
                        {
                          o_cls = cls;
                          o_config = config;
                          o_opt = opt;
                          o_signature = signature;
                          o_seed = seed;
                          o_mode = mode;
                          o_hash = hash;
                        })
                (logical_cells c))
            cells
        in
        Ok (of_observations obs)
      with Triage_error m -> Error m)
  | c ->
      Error
        (Printf.sprintf
           "campaign %S is not triageable: its kernels are not regenerable \
            from a seed (triage supports table4 and table1 journals)"
           c)

let to_table (h : Journal.header) (buckets : bucket list) =
  let total = List.fold_left (fun a b -> a + b.cells) 0 buckets in
  let header =
    [ "class"; "conf"; "opt"; "trigger signature"; "cells"; "kernels"; "exemplar" ]
  in
  let rows =
    List.map
      (fun b ->
        [
          b.cls;
          string_of_int b.config;
          b.opt;
          b.signature;
          string_of_int b.cells;
          string_of_int b.kernels;
          Printf.sprintf "seed %d %s %s" b.exemplar_seed b.exemplar_mode
            (String.sub b.exemplar_hash 0 12);
        ])
      buckets
  in
  Table_fmt.render_titled
    ~title:
      (Printf.sprintf
         "Distinct-bug triage (%s journal: %d interesting cells in %d buckets)"
         h.Journal.campaign total (List.length buckets))
    ~header rows

let corpus_entries (buckets : bucket list) =
  List.filter_map
    (fun b ->
      match Gen_config.mode_of_string b.exemplar_mode with
      | None -> None
      | Some m ->
          let tc, _ =
            Generate.generate ~cfg:(Gen_config.scaled m) ~seed:b.exemplar_seed ()
          in
          let text = Pp.program_to_string tc.Ast.prog in
          Some
            ( {
                Corpus.hash = Corpus.hash_text text;
                seed = b.exemplar_seed;
                mode = b.exemplar_mode;
                cls = b.cls;
                config = b.config;
                opt = b.opt;
              },
              text ))
    buckets
