(** Deduplication of journal findings into distinct-bug buckets.

    A machine-week campaign surfaces thousands of failing cells but only
    a handful of distinct compiler bugs; the paper's authors triaged by
    hand (section 6) and later built tooling to keep such campaigns'
    bookkeeping reproducible. This module automates the first cut: every
    wrong-code / crash / build-failure cell of a journal is keyed by

    [(configuration, opt level, outcome class, trigger signature)]

    where the trigger signature is the set of syntactic features
    ({!Features.t}) the documented fault models key on — two kernels
    failing on the same configuration with the same feature set are very
    likely witnesses of the same underlying bug, which is exactly how the
    paper's section 6 narrates its findings ("kernels with a struct whose
    first member is a char", "a barrier in a helper function", ...).

    Wrong-code classification is recomputed from the journal by majority
    vote, exactly as the campaign tables do; kernels are regenerated
    deterministically from their journalled seed and mode, so triage
    needs nothing but the journal. Works on table4 and table1 journals
    (plainly generated kernels); table3/table5 cells are derived objects
    (injected benchmarks, EMI variants) that cannot be regenerated from a
    seed alone and are rejected. *)

type bucket = {
  cls : string;  (** "wrong-code" | "crash" | "build-failure" *)
  config : int;
  opt : string;  (** ["-"] | ["+"] *)
  signature : string;  (** comma-joined trigger features, or ["plain"] *)
  cells : int;  (** failing cells in the bucket *)
  kernels : int;  (** distinct kernels among them *)
  exemplar_seed : int;  (** first witness, in journal order *)
  exemplar_mode : string;
  exemplar_hash : string;  (** content address of the exemplar's text *)
}

val signature_of_features : Features.t -> string
(** The trigger-feature signature: the names of the active features that
    documented fault models key on, comma-joined; ["plain"] if none. *)

type observation = {
  o_cls : string;  (** "wrong-code" | "crash" | "build-failure" *)
  o_config : int;
  o_opt : string;  (** ["-"] | ["+"] *)
  o_signature : string;  (** {!signature_of_features} of the kernel *)
  o_seed : int;  (** kernel identity (generator seed, or fuzz counter) *)
  o_mode : string;
  o_hash : string;  (** content address of the kernel text *)
}
(** One interesting (kernel, configuration, opt level) cell, already
    classified. The journal path builds these by regenerating kernels
    from their seeds; the fuzzing campaign builds them directly from the
    kernels it holds in memory (its mutants have no generator seed). *)

val observation_fields : observation -> (string * Jsonl.t) list
(** Canonical JSON fields of one observation — the encoding the serve
    daemon journals and accepts over its [/observation] endpoint. *)

val observation_of_json : Jsonl.t -> observation option
(** Inverse of {!observation_fields} applied to an object value. *)

val bucket_to_json : bucket -> Jsonl.t
(** One bucket as a JSON object — the serve daemon's [/bugs] rows. *)

val of_observations : observation list -> bucket list
(** The dedup core: bucket observations by
    [(class, config, opt, signature)], counting cells and distinct
    [(mode, seed)] kernels, with the first witness in list order as each
    bucket's exemplar. Buckets sorted by key. *)

val of_journal :
  Journal.header -> Journal.cell list -> (bucket list, string) result
(** Buckets sorted by (class, config, opt, signature). [Error] when the
    journal's campaign is not triageable or a record names an unknown
    generation mode. *)

val to_table : Journal.header -> bucket list -> string

val corpus_entries : bucket list -> (Corpus.entry * string) list
(** One corpus entry per bucket: the exemplar kernel's provenance and
    printed text, ready for {!Corpus.add_all}. Buckets sharing an
    exemplar kernel deduplicate at the corpus layer. *)
