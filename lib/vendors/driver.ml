let fault_rate = function
  | Fault.Reject { rate; _ } | Fault.Compile_hang { rate; _ }
  | Fault.Runtime_crash { rate; _ } | Fault.Machine_crash { rate; _ }
  | Fault.Run_timeout { rate; _ } | Fault.Wrong_code { rate; _ }
  | Fault.Quirk { rate; _ } ->
      rate
  | Fault.Slow_compile _ | Fault.Buggy_rotate_fold -> 1.0

let salt_of (c : Config.t) ~opt i =
  (c.Config.id * 1000) + (if opt then 500 else 0) + i

let faults_of ?(noise = true) (c : Config.t) ~opt =
  let fs = if opt then c.Config.faults_on else c.Config.faults_off in
  if noise then fs else List.filter (fun f -> fault_rate f >= 1.0) fs

(* first front-end fault that fires, if any *)
let front_end ?noise (c : Config.t) ~opt (feats : Features.t) : Outcome.t option =
  let faults = faults_of ?noise c ~opt in
  let rec scan i = function
    | [] -> None
    | f :: rest -> (
        let salt = salt_of c ~opt i in
        match f with
        | Fault.Reject { message; rate; key; requires }
          when requires feats && Fault.gate key feats ~salt ~rate ->
            Some (Outcome.Build_failure message)
        | Fault.Compile_hang { rate; key; requires }
          when requires feats && Fault.gate key feats ~salt ~rate ->
            Some Outcome.Timeout
        | Fault.Slow_compile { requires } when requires feats ->
            Some Outcome.Timeout
        | _ -> scan (i + 1) rest)
  in
  scan 0 faults

let has_buggy_rotate (c : Config.t) ~opt =
  List.exists
    (function Fault.Buggy_rotate_fold -> true | _ -> false)
    (faults_of c ~opt)

let std_pipeline ~rotate_zero_bug =
  [
    Const_fold.pass ~rotate_zero_bug ();
    Simplify.pass ();
    Unroll.pass ();
    Dce.pass ();
    Const_fold.pass ~rotate_zero_bug ();
    Simplify.pass ();
  ]

(* Pass-pipeline results depend only on (optimising?, rotate bug?), so a
   prepared test case caches the four possibilities on first use. The
   caches are Memo cells, not Lazy, because a prepared kernel is shared by
   every (config, opt-level) cell of a campaign and those cells run
   concurrently on pool domains. *)
type prepared = {
  tc : Ast.testcase;
  feats : Features.t Memo.t;
  khash : string Memo.t; (* content hash of the printed source program *)
  plain : Ast.program Memo.t; (* no passes *)
  rotate_only : Ast.program Memo.t; (* Fig. 2(b) front-end folder at -O0 *)
  optimized : Ast.program Memo.t;
  optimized_rotate : Ast.program Memo.t;
}

let prepare (tc : Ast.testcase) =
  {
    tc;
    feats = Memo.make (fun () -> Features.of_testcase tc);
    khash =
      Memo.make (fun () ->
          Digest.to_hex (Digest.string (Pp.program_to_string tc.Ast.prog)));
    plain = Memo.of_val tc.Ast.prog;
    rotate_only =
      Memo.make (fun () ->
          Pass.pipeline [ Const_fold.pass ~rotate_zero_bug:true () ] tc.Ast.prog);
    optimized =
      Memo.make (fun () ->
          Pass.pipeline (std_pipeline ~rotate_zero_bug:false) tc.Ast.prog);
    optimized_rotate =
      Memo.make (fun () ->
          Pass.pipeline (std_pipeline ~rotate_zero_bug:true) tc.Ast.prog);
  }

let testcase_of p = p.tc
let features_of_prepared p = Memo.force p.feats

let compiled (c : Config.t) ~opt (p : prepared) =
  let rotate = has_buggy_rotate c ~opt in
  if opt && c.Config.optimizes then
    Memo.force (if rotate then p.optimized_rotate else p.optimized)
  else if rotate then Memo.force p.rotate_only
  else Memo.force p.plain

let apply_wrong_code ?noise (c : Config.t) ~opt feats prog =
  let faults = faults_of ?noise c ~opt in
  let _, prog =
    List.fold_left
      (fun (i, prog) f ->
        let salt = salt_of c ~opt i in
        match f with
        | Fault.Wrong_code { rate; key; requires }
          when requires feats && Fault.gate key feats ~salt ~rate ->
            let seed =
              Digest_util.mix
                (match key with
                | Fault.Full -> feats.Features.full_digest
                | Fault.Stable -> feats.Features.stable_digest)
                (Int64.of_int (salt + 77))
            in
            (i + 1, Mutate.apply ~seed prog)
        | _ -> (i + 1, prog))
      (0, prog) faults
  in
  prog

let assemble_profile ?noise (c : Config.t) ~opt feats =
  let faults = faults_of ?noise c ~opt in
  let _, profile =
    List.fold_left
      (fun (i, profile) f ->
        let salt = salt_of c ~opt i in
        match f with
        | Fault.Quirk { rate; key; requires; install }
          when requires feats && Fault.gate key feats ~salt ~rate ->
            (i + 1, install profile)
        | _ -> (i + 1, profile))
      (0, Profile.reference) faults
  in
  profile

(* crash / machine-crash / run-timeout decisions (pre-execution) *)
let runtime_fate ?noise (c : Config.t) ~opt feats : Outcome.t option =
  let faults = faults_of ?noise c ~opt in
  let rec scan i = function
    | [] -> None
    | f :: rest -> (
        let salt = salt_of c ~opt i in
        match f with
        | Fault.Runtime_crash { message; rate; key; requires }
          when requires feats && Fault.gate key feats ~salt ~rate ->
            Some (Outcome.Crash message)
        | Fault.Machine_crash { message; rate }
          when Fault.gate Fault.Full feats ~salt ~rate ->
            Some (Outcome.Machine_crash message)
        | Fault.Run_timeout { rate; key; requires }
          when requires feats && Fault.gate key feats ~salt ~rate ->
            Some Outcome.Timeout
        | _ -> scan (i + 1) rest)
  in
  scan 0 faults

let interp_config ?fuel (c : Config.t) profile =
  {
    Interp.default_config with
    Interp.schedule = Sched.Seeded c.Config.id;
    profile;
    fuel =
      (match fuel with
      | Some f -> f
      | None -> Interp.default_config.Interp.fuel);
  }

let compiled_program (c : Config.t) ~opt (tc : Ast.testcase) =
  let p = prepare tc in
  apply_wrong_code c ~opt (Memo.force p.feats) (compiled c ~opt p)

(* span name is only materialised when tracing is on *)
let exec_span ?flow (c : Config.t) ~opt f =
  if Span.enabled () then
    Span.with_ ~cat:"exec" ?flow
      (Printf.sprintf "exec:%d%c" c.Config.id (if opt then '+' else '-'))
      f
  else f ()

let run_prepared_stats ?noise ?fuel ?flow (c : Config.t) ~opt (p : prepared) :
    Outcome.t * Interp.stats =
  let feats = Memo.force p.feats in
  match front_end ?noise c ~opt feats with
  | Some o -> (o, Interp.zero_stats)
  | None -> (
      match runtime_fate ?noise c ~opt feats with
      | Some o -> (o, Interp.zero_stats)
      | None ->
          let prog = apply_wrong_code ?noise c ~opt feats (compiled c ~opt p) in
          let profile = assemble_profile ?noise c ~opt feats in
          (* build the tick table on the exact post-pass, post-mutation
             program value the interpreter will execute, so physical-
             identity lookups hit *)
          let costs =
            if Costprof.enabled () then Some (Costwalk.build prog) else None
          in
          let r =
            exec_span ?flow c ~opt (fun () ->
                Interp.run ?costs
                  ~config:(interp_config ?fuel c profile)
                  { p.tc with Ast.prog })
          in
          let stats =
            match costs with
            | None -> r.Interp.stats
            | Some cw ->
                {
                  r.Interp.stats with
                  Interp.prof =
                    [
                      {
                        Costprof.khash = Memo.force p.khash;
                        config = c.Config.id;
                        opt = (if opt then "+" else "-");
                        ticks = Costwalk.ticks cw;
                        constructs = Costwalk.constructs cw;
                      };
                    ];
                }
          in
          (* a real device does not diagnose UB: it just misbehaves *)
          (match r.Interp.outcome with
          | Outcome.Ub m -> (Outcome.Crash ("undefined behaviour: " ^ m), stats)
          | o -> (o, stats)))

let run_prepared ?noise ?fuel (c : Config.t) ~opt (p : prepared) : Outcome.t =
  fst (run_prepared_stats ?noise ?fuel c ~opt p)

let run ?noise (c : Config.t) ~opt tc = run_prepared ?noise c ~opt (prepare tc)

let run_both c tc =
  let p = prepare tc in
  (run_prepared c ~opt:false p, run_prepared c ~opt:true p)

let reference_outcome ?(detect_races = false) tc =
  let config = { Interp.default_config with Interp.detect_races } in
  Interp.run_outcome ~config tc
