(** Compile-and-run a test case on a simulated configuration.

    The pipeline mirrors an online OpenCL compile+execute cycle:

    + front-end checks — vendor-specific rejections, compile hangs and
      pathological compile times fire here (build failure / timeout);
    + optimisation — when optimisations are on and the configuration
      optimises, the AST pass pipeline runs (const-fold, simplify, unroll,
      DCE), with buggy pass variants substituted where a fault demands;
    + miscompilation — gated [Wrong_code] faults apply deterministic
      mutations; gated [Quirk] faults assemble the execution profile;
    + execution — the device simulator runs the result; gated crash /
      machine-crash / timeout faults pre-empt execution (the simulation
      does not need to burn cycles to know the run would crash).

    Everything is deterministic in (configuration, optimisation level,
    test case). *)

type prepared
(** A test case with its feature vector and pass-pipeline results cached:
    features and the optimised program are shared by every configuration,
    so campaigns prepare once and run many. The caches are domain-safe
    ({!Memo}), so one prepared kernel may be run concurrently from every
    domain of an execution pool. *)

val prepare : Ast.testcase -> prepared
val testcase_of : prepared -> Ast.testcase
val features_of_prepared : prepared -> Features.t

val run_prepared :
  ?noise:bool -> ?fuel:int -> Config.t -> opt:bool -> prepared -> Outcome.t
(** [noise:false] considers only deterministic faults (gate rate >= 1.0) —
    used when demonstrating a specific reduced bug exhibit, where the
    paper's investigation likewise separated the bug under study from
    unrelated transient failures. Default [true].

    [fuel] overrides the interpreter's per-thread step budget — the
    campaigns' per-task soft timeout. Exhaustion yields a deterministic
    [Outcome.Timeout]; the execution pool never kills a task. *)

val run_prepared_stats :
  ?noise:bool ->
  ?fuel:int ->
  ?flow:int ->
  Config.t ->
  opt:bool ->
  prepared ->
  Outcome.t * Interp.stats
(** [run_prepared] plus the interpreter's work tally for the launch —
    zero when a front-end or pre-execution fault short-circuits the run.
    Deterministic in (configuration, opt level, test case), so campaign
    metric totals built from it are [-j]-invariant.

    [flow] tags the exec span with a causal flow id (the campaign's
    global cell index) so merged traces can stitch coordinator leases,
    worker executions and serve submissions of the same cell together.

    When {!Costprof.enabled}, the stats carry exactly one cost cell
    (kernel content hash × (config, opt) × per-construct tick counts);
    the interpreter's tick table is built on the post-pass,
    post-mutation program actually executed. *)

val run : ?noise:bool -> Config.t -> opt:bool -> Ast.testcase -> Outcome.t
(** [prepare] + [run_prepared]. *)

val run_both : Config.t -> Ast.testcase -> Outcome.t * Outcome.t
(** (optimisations off, optimisations on). *)

val reference_outcome : ?detect_races:bool -> Ast.testcase -> Outcome.t
(** The trustworthy reference device (no faults, standard layout). *)

val compiled_program : Config.t -> opt:bool -> Ast.testcase -> Ast.program
(** The program as the configuration's compiler transforms it (passes and
    mutations applied) — the analogue of inspecting emitted PTX/assembly
    when investigating a bug (paper section 6). Front-end rejections are
    ignored here. *)
