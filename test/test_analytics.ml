(* The analytics layer: eventlog codec and writer, lineage reconstruction
   from journal provenance, the HTML report generator and the stall
   watchdog — plus the property the eventlog hangs off: lifecycle events
   stream through the ordered merge path, so the event file is
   byte-identical across -j values, exactly like the journal. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

(* --- eventlog codec --- *)

let sample_events =
  [
    Eventlog.Campaign_start
      {
        campaign = "fuzz";
        ident = [ ("fuel", "-"); ("seed", "1") ];
        scale = [ ("budget", "8") ];
        total = 160;
      };
    Eventlog.Cell
      { index = 0; seed = 0; mode = "fuzz"; config = 1; opt = "-"; cls = "ok" };
    Eventlog.Generation
      {
        gen = 0;
        kernels = 8;
        mutants = 2;
        new_bits = 31;
        coverage = 200;
        corpus = 5;
        findings = 3;
        distinct_bugs = 2;
      };
    Eventlog.Coverage_delta { gen = 0; kernel = 3; new_bits = 7; total = 150 };
    Eventlog.Triage_hit
      {
        cls = "wrong-code";
        config = 13;
        opt = "+";
        signature = "vector";
        seed = 3;
        mode = "fuzz";
        hash = "abcdef";
      };
    Eventlog.Pool_health
      {
        worker = -1;
        submitted = 100;
        completed = 90;
        in_flight = 10;
        stalled_domains = [];
      };
    Eventlog.Pool_health
      {
        worker = 2;
        submitted = 40;
        completed = 30;
        in_flight = 10;
        stalled_domains = [ 2 ];
      };
    Eventlog.Stage_timing [ ("exec", 12345); ("gen", 678) ];
    Eventlog.Watchdog
      {
        level = "stall";
        completed = 90;
        in_flight = 10;
        stalled_domains = [ 2; 5 ];
        idle_ms = 30000;
      };
    Eventlog.Fleet_health
      {
        total = 160;
        collected = 80;
        in_flight = 3;
        fleet_milli = 12500;
        workers =
          [
            {
              Eventlog.fw_worker = 0;
              fw_cells = 41;
              fw_rate_milli = 6500;
              fw_last_ms = 120;
              fw_alive = true;
              fw_straggler = false;
            };
            {
              Eventlog.fw_worker = 1;
              fw_cells = 39;
              fw_rate_milli = 600;
              fw_last_ms = 11000;
              fw_alive = true;
              fw_straggler = true;
            };
          ];
      };
    Eventlog.Campaign_end { cells = 160 };
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun e ->
      match Eventlog.decode (Eventlog.encode e) with
      | Ok e' ->
          Alcotest.(check bool) "decode (encode e) = e" true (e = e')
      | Error m -> Alcotest.failf "roundtrip failed: %s" m)
    sample_events

let test_decode_rejects_damage () =
  let line = Eventlog.encode (List.hd sample_events) in
  let flipped =
    String.mapi (fun i c -> if i = 8 then (if c = 'z' then 'y' else 'z') else c) line
  in
  (match Eventlog.decode flipped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted line decoded");
  match Eventlog.decode "{\"v\":99,\"e\":\"campaign_end\",\"cells\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema version accepted"

(* the v1 -> v2 schema bump only added event kinds, so a line written
   by the previous schema must still decode *)
let test_decode_old_schema_version () =
  let line =
    Jsonl.encode_line
      [
        ("v", Jsonl.Int 1);
        ("e", Jsonl.Str "campaign_end");
        ("cells", Jsonl.Int 5);
      ]
  in
  match Eventlog.decode line with
  | Ok (Eventlog.Campaign_end { cells }) ->
      Alcotest.(check int) "v1 payload decodes" 5 cells
  | Ok _ -> Alcotest.fail "v1 line decoded to the wrong event"
  | Error m -> Alcotest.failf "v1 line rejected: %s" m

let test_deterministic_split () =
  List.iter
    (fun e ->
      let expected =
        match e with
        | Eventlog.Pool_health _ | Eventlog.Stage_timing _ | Eventlog.Watchdog _
        | Eventlog.Fleet_health _ ->
            false
        | _ -> true
      in
      Alcotest.(check bool) "is_deterministic matches the contract" expected
        (Eventlog.is_deterministic e))
    sample_events

let test_writer_and_torn_tail () =
  let path = Filename.temp_file "test_eventlog" ".jsonl" in
  let w = Eventlog.create ~path in
  List.iter (Eventlog.emit w) sample_events;
  Eventlog.close w;
  (match Eventlog.load ~path with
  | Ok (evs, torn) ->
      Alcotest.(check bool) "clean file is not torn" false torn;
      Alcotest.(check bool) "events replay in order" true (evs = sample_events)
  | Error m -> Alcotest.failf "load failed: %s" m);
  (* a kill -9 mid-append leaves a partial final line: discarded, flagged *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"v\":1,\"e\":\"cell\",\"ind";
  close_out oc;
  (match Eventlog.load ~path with
  | Ok (evs, torn) ->
      Alcotest.(check bool) "torn tail flagged" true torn;
      Alcotest.(check int) "clean prefix kept"
        (List.length sample_events)
        (List.length evs)
  | Error m -> Alcotest.failf "torn tail should not fail the load: %s" m);
  Sys.remove path

(* --- fuzz lifecycle events: -j invariance and lineage --- *)

let fuzz_budget = 24
let fuzz_configs = [ 1; 13; 15 ]

let run_fuzz jobs =
  let cells = ref [] and events = ref [] in
  let r =
    Fuzz_loop.run ~jobs ~budget:fuzz_budget ~seed:3 ~config_ids:fuzz_configs
      ~sink:(fun c -> cells := c :: !cells)
      ~events:(fun e -> events := Eventlog.encode e :: !events)
      ()
  in
  (r, List.rev !cells, List.rev !events)

let fuzz_j1 = lazy (run_fuzz 1)
let fuzz_j4 = lazy (run_fuzz 4)

let test_events_j_invariant () =
  let _, cells1, events1 = Lazy.force fuzz_j1 in
  let _, cells4, events4 = Lazy.force fuzz_j4 in
  Alcotest.(check bool) "journalled cells identical across -j" true
    (cells1 = cells4);
  Alcotest.(check (list string)) "encoded events identical across -j" events1
    events4;
  Alcotest.(check bool) "events were actually emitted" true (events1 <> []);
  (* every emitted kind is inside the determinism contract *)
  List.iter
    (fun line ->
      match Eventlog.decode line with
      | Ok e ->
          Alcotest.(check bool) "fuzz emits only deterministic kinds" true
            (Eventlog.is_deterministic e)
      | Error m -> Alcotest.failf "emitted line does not decode: %s" m)
    events1

let lineage_exn cells =
  match Lineage.of_cells cells with
  | Ok t -> t
  | Error m -> Alcotest.failf "lineage rejected a live journal: %s" m

let test_lineage_properties () =
  let r, cells, _ = Lazy.force fuzz_j1 in
  let t = lineage_exn cells in
  Alcotest.(check int) "one DAG node per kernel" r.Fuzz_loop.kernels_run
    (Lineage.size t);
  let n_mutants = ref 0 in
  List.iter
    (fun id ->
      match Lineage.node t id with
      | None -> Alcotest.failf "kernel %d listed but not resolvable" id
      | Some n -> (
          match n.Lineage.prov with
          | Lineage.Root _ ->
              Alcotest.(check (option int)) "roots have no parent" None
                (Lineage.parent t id)
          | Lineage.Mutant { parent; _ } ->
              incr n_mutants;
              (* the satellite property: every P_mut parent resolves to an
                 earlier journalled kernel *)
              Alcotest.(check bool) "parent strictly earlier" true (parent < id);
              Alcotest.(check bool) "parent resolvable" true
                (Lineage.node t parent <> None);
              (* acyclicity, constructively: the root-first ancestry is
                 finite, strictly increasing and ends at this kernel *)
              let path = Lineage.path_to_root t id in
              Alcotest.(check bool) "path starts at a root" true
                (match path with (_, None) :: _ -> true | _ -> false);
              Alcotest.(check bool) "path ends at the kernel" true
                (match List.rev path with (k, _) :: _ -> k = id | [] -> false);
              let ids = List.map fst path in
              Alcotest.(check bool) "path ids strictly increase" true
                (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ids - 1) ids)
                   (List.tl ids));
              Alcotest.(check bool) "depth = path length - 1" true
                (Lineage.depth t id = List.length path - 1);
              Alcotest.(check bool) "ancestry tops out at a generator seed"
                true
                (Lineage.root_seed t id <> None)))
    (Lineage.ids t);
  Alcotest.(check bool) "the run actually produced mutants" true
    (!n_mutants > 0);
  Alcotest.(check int) "operator counts cover every mutant" !n_mutants
    (List.fold_left (fun a (_, n) -> a + n) 0 (Lineage.operator_counts t))

let test_lineage_j_invariant () =
  let _, cells1, _ = Lazy.force fuzz_j1 in
  let _, cells4, _ = Lazy.force fuzz_j4 in
  let t1 = lineage_exn cells1 and t4 = lineage_exn cells4 in
  Alcotest.(check (list int)) "same kernels in the same order"
    (Lineage.ids t1) (Lineage.ids t4);
  List.iter
    (fun id ->
      Alcotest.(check bool) "same provenance and tags per kernel" true
        (Lineage.node t1 id = Lineage.node t4 id))
    (Lineage.ids t1)

let test_lineage_rejects_bad_provenance () =
  let cell ~seed ~note =
    {
      Journal.index = 0;
      seed;
      mode = "fuzz";
      config = 1;
      opt = "-";
      outcomes = [ Outcome.Success "0" ];
      note;
    }
  in
  (match Lineage.of_cells [ cell ~seed:0 ~note:"s=1;b=0" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing provenance accepted");
  (match
     Lineage.of_cells
       [ cell ~seed:0 ~note:"p=g1"; cell ~seed:1 ~note:"p=m2:splice" ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forward parent reference accepted");
  match
    Lineage.of_cells [ cell ~seed:0 ~note:"p=g1"; cell ~seed:1 ~note:"p=m1:splice" ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-parent accepted"

let test_discovery_paths () =
  let _, cells, events = Lazy.force fuzz_j1 in
  let t = lineage_exn cells in
  let hits =
    List.filter_map
      (fun line ->
        match Eventlog.decode line with
        | Ok (Eventlog.Triage_hit { cls; config; opt; signature; seed; _ }) ->
            Some (cls, config, opt, signature, seed)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "the run produced triage hits" true (hits <> []);
  let ds = Lineage.discovery_paths t hits in
  Alcotest.(check bool) "at least one discovery" true (ds <> []);
  let keys =
    List.map
      (fun d ->
        (d.Lineage.d_cls, d.Lineage.d_config, d.Lineage.d_opt,
         d.Lineage.d_signature))
      ds
  in
  Alcotest.(check int) "one discovery per distinct bucket"
    (List.length (List.sort_uniq compare keys))
    (List.length keys);
  List.iter
    (fun d ->
      Alcotest.(check bool) "path ends at the exemplar kernel" true
        (match List.rev d.Lineage.d_path with
        | (k, _) :: _ -> k = d.Lineage.d_kernel
        | [] -> false))
    ds

(* --- HTML report --- *)

let test_report_html () =
  let r, cells, events = Lazy.force fuzz_j1 in
  let header =
    Fuzz_loop.journal_header ~budget:fuzz_budget ~seed:3
      ~config_ids:fuzz_configs ()
  in
  let evs =
    List.filter_map
      (fun l -> match Eventlog.decode l with Ok e -> Some e | Error _ -> None)
      events
  in
  let html = Report_html.render ~header ~cells ~events:evs () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report contains %S" needle) true
        (contains html needle))
    [
      "<!DOCTYPE html>";
      "Outcomes by configuration and opt level";
      "Interesting-cell heatmap";
      "Campaign curves";
      "<svg";
      "Bug discovery paths";
      "<details>";
    ];
  (* self-contained: no scripts, no external references *)
  List.iter
    (fun banned ->
      Alcotest.(check bool) (Printf.sprintf "report avoids %S" banned) false
        (contains html banned))
    [ "<script"; "http://"; "https://"; "src=" ];
  let summary = Report_html.summary ~header ~cells ~events:evs () in
  Alcotest.(check bool) "summary names the campaign" true
    (contains summary "campaign fuzz:");
  Alcotest.(check bool) "summary reports the kernel count" true
    (contains summary (Printf.sprintf "%d kernels" r.Fuzz_loop.kernels_run))

(* --- watchdog --- *)

let collect_watchdog ?abort ~probe ~warn_ms ~timeout_ms wait_s =
  let events = ref [] and m = Mutex.create () in
  let on_event level snap =
    Mutex.lock m;
    events := (level, snap) :: !events;
    Mutex.unlock m
  in
  let w = Watchdog.start ~poll_ms:5 ~warn_ms ~timeout_ms ~probe ?abort ~on_event () in
  Unix.sleepf wait_s;
  Watchdog.stop w;
  List.rev !events

let test_watchdog_escalates_on_stall () =
  (* a frozen pool: completed never moves, domain 1's heartbeat is
     ancient while domain 2 beats on every probe *)
  let probe () = Some (5, 2, [ (1, 1L); (2, Mclock.now_ns ()) ]) in
  let events =
    collect_watchdog ~probe ~warn_ms:30 ~timeout_ms:90 0.4
  in
  let levels = List.map fst events in
  Alcotest.(check bool) "warns exactly once" true
    (List.length (List.filter (( = ) Watchdog.Warn) levels) = 1);
  Alcotest.(check bool) "stalls exactly once" true
    (List.length (List.filter (( = ) Watchdog.Stall) levels) = 1);
  Alcotest.(check bool) "warn precedes stall" true
    (levels = [ Watchdog.Warn; Watchdog.Stall ]);
  let _, stall = List.nth events 1 in
  Alcotest.(check (list int)) "only the silent domain is stale" [ 1 ]
    stall.Watchdog.stalled_domains;
  Alcotest.(check bool) "idle window measured" true
    (stall.Watchdog.idle_ms >= 90)

let test_watchdog_abort_fires_once () =
  let aborted = ref 0 in
  let probe () = Some (7, 1, []) in
  let events =
    collect_watchdog
      ~abort:(fun _ -> incr aborted)
      ~probe ~warn_ms:20 ~timeout_ms:60 0.3
  in
  Alcotest.(check int) "abort action ran once" 1 !aborted;
  Alcotest.(check bool) "abort event recorded after the stall" true
    (List.map fst events = [ Watchdog.Warn; Watchdog.Stall; Watchdog.Abort ])

let test_watchdog_quiet_while_progressing () =
  let counter = Atomic.make 0 in
  let probe () = Some (Atomic.fetch_and_add counter 1, 1, []) in
  let events = collect_watchdog ~probe ~warn_ms:20 ~timeout_ms:40 0.25 in
  Alcotest.(check int) "no events while completed keeps moving" 0
    (List.length events)

let test_pool_probe_without_pool () =
  Alcotest.(check bool) "no pool, nothing to watch" true
    (Watchdog.pool_probe () = None)

(* --- fleet aggregator --- *)

(* every clock is passed in, so the fold is a deterministic function of
   the crafted beat/cell/lease sequence *)
let at_ms ms = Int64.of_int (ms * 1_000_000)

let test_fleet_coordinator_ewma () =
  let f = Fleet.create ~total:1000 ~now:(at_ms 0) () in
  Fleet.on_join f ~worker:0 ~pid:101 ~host:"a" ~now:(at_ms 0);
  (* a steady 10 cells/s for 10 seconds, one streamed cell every 100 ms *)
  for i = 0 to 99 do
    Fleet.on_cell f ~worker:0 ~now:(at_ms (i * 100))
  done;
  let snap = Fleet.snapshot f ~now:(at_ms 10_000) ~collected:100 ~in_flight:1 in
  let row = List.hd snap.Fleet.rows in
  Alcotest.(check bool) "EWMA converges near 10 cells/s" true
    (row.Fleet.rate_milli > 7000 && row.Fleet.rate_milli < 13000);
  Alcotest.(check int) "fleet rate sums the live workers" row.Fleet.rate_milli
    snap.Fleet.fleet_milli;
  Alcotest.(check bool) "ETA estimated from the fleet rate" true
    (snap.Fleet.eta_ms > 0);
  Alcotest.(check int) "cells attributed to the worker" 100 row.Fleet.cells;
  Alcotest.(check (list int)) "a lone busy worker is no straggler" []
    snap.Fleet.stragglers

let test_fleet_slow_rate_straggler () =
  let f = Fleet.create ~total:10_000 ~now:(at_ms 0) () in
  List.iter
    (fun w -> Fleet.on_join f ~worker:w ~pid:(100 + w) ~host:"h" ~now:(at_ms 0))
    [ 0; 1; 2 ];
  let beat rate =
    {
      Fleet.completed = 50;
      ewma_milli = rate;
      queue_depth = 0;
      rss_kb = 0;
      stage_us = [];
    }
  in
  (* no streamed cells, so each worker's self-reported EWMA is the
     effective rate: two healthy workers and one at a tenth of the
     median *)
  Fleet.on_beat f ~worker:0 ~now:(at_ms 900) (Some (beat 10_000));
  Fleet.on_beat f ~worker:1 ~now:(at_ms 950) (Some (beat 9_000));
  Fleet.on_beat f ~worker:2 ~now:(at_ms 980) (Some (beat 900));
  let snap = Fleet.snapshot f ~now:(at_ms 1_000) ~collected:150 ~in_flight:3 in
  Alcotest.(check (list int)) "the slow worker is flagged" [ 2 ]
    snap.Fleet.stragglers;
  let row w = List.nth snap.Fleet.rows w in
  Alcotest.(check bool) "healthy workers are not" true
    ((not (row 0).Fleet.straggler) && not (row 1).Fleet.straggler);
  Alcotest.(check int) "beat-reported completion surfaces" 50
    (row 0).Fleet.beat_completed

let test_fleet_stale_mid_lease () =
  let f = Fleet.create ~total:1_000 ~now:(at_ms 0) () in
  Fleet.on_join f ~worker:0 ~pid:7 ~host:"h" ~now:(at_ms 0);
  Fleet.on_join f ~worker:1 ~pid:8 ~host:"h" ~now:(at_ms 0);
  Fleet.on_lease f ~worker:0 ~lease_id:1 ~cells:100 ~now:(at_ms 500);
  Fleet.on_lease f ~worker:1 ~lease_id:2 ~cells:100 ~now:(at_ms 500);
  (* worker 1 keeps beating (bare beats refresh liveness too); worker 0
     goes silent holding its lease *)
  for s = 1 to 14 do
    Fleet.on_beat f ~worker:1 ~now:(at_ms (s * 1000)) None
  done;
  let snap = Fleet.snapshot f ~now:(at_ms 14_000) ~collected:0 ~in_flight:2 in
  Alcotest.(check (list int)) "the silent leased worker is flagged" [ 0 ]
    snap.Fleet.stragglers;
  let r0 = List.hd snap.Fleet.rows in
  Alcotest.(check int) "it still holds its lease" 1 r0.Fleet.leases;
  Alcotest.(check bool) "silence measured in ms" true
    (r0.Fleet.last_ms >= 10_000);
  (* the worker comes back and both leases complete: flags clear and the
     grant-to-done latency lands in the rolling window *)
  Fleet.on_beat f ~worker:0 ~now:(at_ms 14_500) None;
  Fleet.on_done f ~worker:0 ~lease_id:1 ~now:(at_ms 14_500);
  Fleet.on_done f ~worker:1 ~lease_id:2 ~now:(at_ms 14_500);
  let snap = Fleet.snapshot f ~now:(at_ms 15_000) ~collected:200 ~in_flight:0 in
  Alcotest.(check (list int)) "no stragglers after completion" []
    snap.Fleet.stragglers;
  let r0 = List.hd snap.Fleet.rows in
  Alcotest.(check bool) "lease latency percentiles recorded" true
    (r0.Fleet.lease_p50_ms >= 13_000
    && r0.Fleet.lease_p90_ms >= r0.Fleet.lease_p50_ms)

let test_fleet_status_line_roundtrip () =
  let f = Fleet.create ~total:500 ~now:(at_ms 0) () in
  Fleet.on_join f ~worker:0 ~pid:11 ~host:"box" ~now:(at_ms 0);
  Fleet.on_lease f ~worker:0 ~lease_id:1 ~cells:50 ~now:(at_ms 100);
  for i = 1 to 40 do
    Fleet.on_cell f ~worker:0 ~now:(at_ms (100 + (i * 50)))
  done;
  Fleet.set_wire f ~worker:0 ~frames_in:41 ~bytes_in:5000 ~frames_out:7
    ~bytes_out:900;
  Fleet.note_local f 60;
  let snap = Fleet.snapshot f ~now:(at_ms 2_200) ~collected:100 ~in_flight:1 in
  let line = Fleet.snapshot_to_line ~campaign:"table1" ~phase:"fabric" snap in
  (match Fleet.snapshot_of_line line with
  | Error m -> Alcotest.failf "status line rejected: %s" m
  | Ok (campaign, phase, snap') ->
      Alcotest.(check string) "campaign survives" "table1" campaign;
      Alcotest.(check string) "phase survives" "fabric" phase;
      Alcotest.(check string) "re-encoding is byte-identical" line
        (Fleet.snapshot_to_line ~campaign ~phase snap');
      Alcotest.(check int) "local cells survive" 60 snap'.Fleet.local_cells;
      let r = List.hd snap'.Fleet.rows in
      Alcotest.(check int) "wire totals survive" 5000 r.Fleet.bytes_in;
      let table = Fleet.to_table ~campaign ~phase snap' in
      Alcotest.(check bool) "table renders the worker host" true
        (contains table "box"));
  (* a flipped byte must not checksum *)
  let damaged =
    String.mapi
      (fun i c -> if i = 12 then (if c = 'z' then 'y' else 'z') else c)
      line
  in
  match Fleet.snapshot_of_line damaged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "damaged status line decoded"

(* `campaign status --json` prints this object: it must carry exactly
   the fields of the checksummed status line, minus the checksum *)
let test_fleet_snapshot_json () =
  let f = Fleet.create ~total:100 ~now:(at_ms 0) () in
  Fleet.on_join f ~worker:0 ~pid:42 ~host:"box" ~now:(at_ms 0);
  Fleet.note_local f 7;
  let snap = Fleet.snapshot f ~now:(at_ms 500) ~collected:10 ~in_flight:0 in
  match Fleet.snapshot_to_json ~campaign:"t" ~phase:"serve" snap with
  | Jsonl.Obj fields ->
      Alcotest.(check string) "same fields as the status line"
        (Fleet.snapshot_to_line ~campaign:"t" ~phase:"serve" snap)
        (Jsonl.encode_line fields);
      let j = Jsonl.Obj fields in
      Alcotest.(check (option string)) "campaign field" (Some "t")
        (Option.bind (Jsonl.member "campaign" j) Jsonl.get_str);
      Alcotest.(check (option string)) "phase field" (Some "serve")
        (Option.bind (Jsonl.member "phase" j) Jsonl.get_str)
  | _ -> Alcotest.fail "snapshot_to_json is not an object"

let test_report_fleet_panel () =
  let header =
    Fuzz_loop.journal_header ~budget:fuzz_budget ~seed:3
      ~config_ids:fuzz_configs ()
  in
  let html = Report_html.render ~header ~cells:[] ~events:sample_events () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "fleet panel contains %S" needle)
        true (contains html needle))
    [ "Fleet"; "straggler"; "6.5" ]

let () =
  Alcotest.run "analytics"
    [
      ( "eventlog",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick
            test_encode_decode_roundtrip;
          Alcotest.test_case "rejects damage + wrong schema" `Quick
            test_decode_rejects_damage;
          Alcotest.test_case "tolerates the previous schema" `Quick
            test_decode_old_schema_version;
          Alcotest.test_case "determinism split" `Quick test_deterministic_split;
          Alcotest.test_case "writer + torn tail" `Quick
            test_writer_and_torn_tail;
        ] );
      ( "fuzz-events",
        [
          Alcotest.test_case "byte-identical across -j" `Slow
            test_events_j_invariant;
        ] );
      ( "lineage",
        [
          Alcotest.test_case "parents resolve, DAG acyclic" `Slow
            test_lineage_properties;
          Alcotest.test_case "identical across -j" `Slow
            test_lineage_j_invariant;
          Alcotest.test_case "rejects bad provenance" `Quick
            test_lineage_rejects_bad_provenance;
          Alcotest.test_case "discovery paths" `Slow test_discovery_paths;
        ] );
      ( "report",
        [
          Alcotest.test_case "self-contained html" `Slow test_report_html;
          Alcotest.test_case "fleet panel" `Quick test_report_fleet_panel;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "coordinator-side EWMA + ETA" `Quick
            test_fleet_coordinator_ewma;
          Alcotest.test_case "slow-rate straggler" `Quick
            test_fleet_slow_rate_straggler;
          Alcotest.test_case "stops beating mid-lease" `Quick
            test_fleet_stale_mid_lease;
          Alcotest.test_case "status line roundtrip" `Quick
            test_fleet_status_line_roundtrip;
          Alcotest.test_case "status --json mirrors the line" `Quick
            test_fleet_snapshot_json;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "escalates on stall" `Quick
            test_watchdog_escalates_on_stall;
          Alcotest.test_case "abort fires once" `Quick
            test_watchdog_abort_fires_once;
          Alcotest.test_case "quiet while progressing" `Quick
            test_watchdog_quiet_while_progressing;
          Alcotest.test_case "pool probe without pool" `Quick
            test_pool_probe_without_pool;
        ] );
    ]
