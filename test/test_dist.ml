(* The distributed fabric: wire framing robustness (torn, truncated,
   corrupt and oversized frames), the checksummed protocol codec, the
   lease tracker's awkward corners (duplicates, out-of-order replies,
   expiry, worker death), the scratch-journal append mode — and the
   subsystem's headline property: a coordinator plus loopback workers
   collect a cell set byte-identical to the single-process run, even
   when a worker dies mid-lease after streaming garbage-ordered
   duplicates. *)

let cell_str c = Jsonl.to_string (Journal.cell_to_json c)

let check_cells label expected got =
  Alcotest.(check (list string))
    label
    (List.map cell_str expected)
    (List.map cell_str got)

let mk_cell ?(mode = "m") ?(opt = "-") ?(config = 1) index =
  {
    Journal.index;
    seed = 1000 + index;
    mode;
    config;
    opt;
    outcomes = [ Outcome.Success (Printf.sprintf "v%d" index) ];
    note = "";
  }

(* --- wire framing --- *)

let drain dec =
  let rec go acc =
    match Wire.next dec with
    | `Frame p -> go (p :: acc)
    | `Awaiting -> Ok (List.rev acc)
    | `Corrupt m -> Error m
  in
  go []

let test_wire_roundtrip () =
  let payloads = [ "a"; ""; String.make 5000 'x'; "{\"k\":\"v\"}" ] in
  (* all frames in one feed *)
  let dec = Wire.decoder () in
  Wire.feed_string dec (String.concat "" (List.map Wire.frame payloads));
  (match drain dec with
  | Ok got -> Alcotest.(check (list string)) "one feed" payloads got
  | Error m -> Alcotest.failf "corrupt: %s" m);
  (* the same bytes fed one byte at a time *)
  let dec = Wire.decoder () in
  let got = ref [] in
  String.iter
    (fun ch ->
      Wire.feed_string dec (String.make 1 ch);
      match drain dec with
      | Ok ps -> got := !got @ ps
      | Error m -> Alcotest.failf "corrupt byte-by-byte: %s" m)
    (String.concat "" (List.map Wire.frame payloads));
  Alcotest.(check (list string)) "byte-by-byte" payloads !got

let test_wire_torn () =
  let whole = Wire.frame "hello world" in
  (* every strict prefix is a clean [`Awaiting], never corruption *)
  for cut = 0 to String.length whole - 1 do
    let dec = Wire.decoder () in
    Wire.feed_string dec (String.sub whole 0 cut);
    match Wire.next dec with
    | `Awaiting -> ()
    | `Frame _ -> Alcotest.failf "prefix of %d bytes produced a frame" cut
    | `Corrupt m -> Alcotest.failf "prefix of %d bytes corrupt: %s" cut m
  done

let corrupt_after label bytes =
  let dec = Wire.decoder () in
  Wire.feed_string dec bytes;
  (match Wire.next dec with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.failf "%s not flagged" label);
  (* corruption is sticky: feeding a good frame does not resynchronise *)
  Wire.feed_string dec (Wire.frame "good");
  match Wire.next dec with
  | `Corrupt _ -> ()
  | `Frame _ | `Awaiting -> Alcotest.failf "%s corruption not sticky" label

let test_wire_corrupt () =
  corrupt_after "non-numeric length" "nope\npayload\n";
  corrupt_after "negative length" "-4\nabcd\n";
  corrupt_after "oversized length"
    (Printf.sprintf "%d\n" (Wire.max_frame + 1));
  corrupt_after "bad terminator" "4\nabcdX";
  (* a length header longer than max_frame's digits is rejected without
     waiting for the newline *)
  corrupt_after "runaway length header" (String.make 32 '9')

(* --- protocol codec --- *)

let small_spec campaign =
  match
    Spec.make ~campaign ~n:1 ~config_ids:[ 1; 12 ] ~gen_size:2 ()
  with
  | Ok s -> s
  | Error m -> Alcotest.failf "spec: %s" m

let test_proto_roundtrip () =
  let msgs =
    [
      Proto.Hello { proto = Proto.version; pid = 42; host = "h" };
      Proto.Welcome
        { worker_id = 3; spec = small_spec "table4"; telemetry = false };
      Proto.Welcome { worker_id = 0; spec = small_spec "fuzz"; telemetry = true };
      Proto.Sync { cells = [ mk_cell 0; mk_cell 1 ] };
      Proto.Lease { lease_id = 9; gen = 2; lo = 16; hi = 24 };
      Proto.Cell { lease_id = 9; cell = mk_cell 17 };
      Proto.Done { lease_id = 9; executed = 8; spans = []; metrics = [] };
      Proto.Done
        {
          lease_id = 10;
          executed = 3;
          spans =
            [
              {
                Span.cat = "exec";
                name = "exec:1-";
                t0_ns = 12345L;
                dur_ns = 678L;
                domain = 2;
                task = 7;
                flow = 17;
                flow_n = 0;
              };
            ];
          metrics = [ ("cells.total", 3); ("interp.steps", 99) ];
        };
      Proto.Beat None;
      Proto.Beat
        (Some
           {
             Fleet.completed = 41;
             ewma_milli = 2500;
             queue_depth = 3;
             rss_kb = 51200;
             stage_us = [ ("exec", 120000); ("gen", 4000) ];
           });
      Proto.Shutdown;
    ]
  in
  List.iter
    (fun m ->
      let s = Proto.encode m in
      match Proto.decode s with
      | Error e -> Alcotest.failf "decode failed: %s (%s)" e s
      | Ok m' ->
          Alcotest.(check string)
            "re-encode is stable" s (Proto.encode m'))
    msgs

let test_proto_checksum () =
  let s =
    Proto.encode
      (Proto.Done { lease_id = 1; executed = 2; spans = []; metrics = [] })
  in
  (* flip one payload byte: the per-line MD5 must catch it *)
  let i = String.length s / 2 in
  let flipped =
    String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
  in
  match Proto.decode flipped with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flipped byte accepted"

(* messages exactly as a protocol-birth peer emits them: a bare beat,
   a payload-less done, a flag-less welcome — all must still decode *)
let test_proto_old_format () =
  (match Proto.decode (Jsonl.encode_line [ ("m", Jsonl.Str "beat") ]) with
  | Ok (Proto.Beat None) -> ()
  | Ok _ -> Alcotest.fail "bare beat decoded with stats"
  | Error e -> Alcotest.failf "bare beat refused: %s" e);
  (match
     Proto.decode
       (Jsonl.encode_line
          [
            ("m", Jsonl.Str "done");
            ("lease", Jsonl.Int 4);
            ("executed", Jsonl.Int 7);
          ])
   with
  | Ok (Proto.Done { lease_id = 4; executed = 7; spans = []; metrics = [] }) ->
      ()
  | Ok _ -> Alcotest.fail "old done decoded wrong"
  | Error e -> Alcotest.failf "old done refused: %s" e);
  (match
     Proto.decode
       (Jsonl.encode_line
          [
            ("m", Jsonl.Str "welcome");
            ("worker", Jsonl.Int 2);
            ("spec", Spec.to_json (small_spec "table4"));
          ])
   with
  | Ok (Proto.Welcome { worker_id = 2; telemetry = false; _ }) -> ()
  | Ok _ -> Alcotest.fail "old welcome decoded wrong"
  | Error e -> Alcotest.failf "old welcome refused: %s" e);
  (* and the payload-less modern encodings are byte-identical to the
     old ones: an old coordinator can read a new worker's plain done *)
  Alcotest.(check string)
    "plain done encodes as v1"
    (Jsonl.encode_line
       [
         ("m", Jsonl.Str "done");
         ("lease", Jsonl.Int 4);
         ("executed", Jsonl.Int 7);
       ])
    (Proto.encode
       (Proto.Done { lease_id = 4; executed = 7; spans = []; metrics = [] }));
  Alcotest.(check string)
    "bare beat encodes as v1"
    (Jsonl.encode_line [ ("m", Jsonl.Str "beat") ])
    (Proto.encode (Proto.Beat None))

let test_addr_parse () =
  (match Proto.addr_of_string "unix:/tmp/x.sock" with
  | Ok (Proto.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix addr");
  (match Proto.addr_of_string "127.0.0.1:9000" with
  | Ok (Proto.Tcp ("127.0.0.1", 9000)) -> ()
  | _ -> Alcotest.fail "tcp addr");
  List.iter
    (fun s ->
      match Proto.addr_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "noport"; "host:"; "host:notint"; "host:0"; "host:70000"; "" ]

(* --- lease tracker --- *)

let test_lease_lifecycle () =
  let t = Lease.create ~chunk:4 ~boundaries:[ (0, 10) ] () in
  Alcotest.(check int) "total" 10 (Lease.total t);
  let l1 = Option.get (Lease.next t ~worker:0 ~now:0L) in
  Alcotest.(check (pair int int)) "first lease" (0, 4) (l1.Lease.lo, l1.Lease.hi);
  Alcotest.(check int) "no dependencies" 0 (Lease.sync_upto t l1);
  let l2 = Option.get (Lease.next t ~worker:1 ~now:0L) in
  Alcotest.(check (pair int int)) "second lease" (4, 8) (l2.Lease.lo, l2.Lease.hi);
  (* out-of-order arrival within the lease, then duplicates *)
  List.iter
    (fun i ->
      match Lease.record t ~lease_id:l1.Lease.lease_id ~now:1L (mk_cell i) with
      | `Fresh -> ()
      | _ -> Alcotest.failf "cell %d not fresh" i)
    [ 3; 1; 0; 2 ];
  (match Lease.record t ~lease_id:l1.Lease.lease_id ~now:2L (mk_cell 3) with
  | `Dup -> ()
  | _ -> Alcotest.fail "duplicate not folded");
  (match Lease.record t ~lease_id:l1.Lease.lease_id ~now:2L (mk_cell 99) with
  | `Out_of_range -> ()
  | _ -> Alcotest.fail "out-of-range accepted");
  Lease.finish t ~lease_id:l1.Lease.lease_id;
  (* a cell from an unknown (already-finished) lease still counts:
     determinism makes a late duplicate's bytes correct *)
  (match Lease.record t ~lease_id:l2.Lease.lease_id ~now:3L (mk_cell 4) with
  | `Fresh -> ()
  | _ -> Alcotest.fail "late cell refused");
  Alcotest.(check int) "collected" 5 (Lease.collected t);
  check_cells "range" [ mk_cell 0; mk_cell 1 ] (Lease.range t ~lo:0 ~hi:2)

let test_lease_expiry () =
  let t = Lease.create ~chunk:8 ~boundaries:[ (0, 8) ] () in
  let l = Option.get (Lease.next t ~worker:0 ~now:0L) in
  ignore (Lease.record t ~lease_id:l.Lease.lease_id ~now:100L (mk_cell 0));
  (* the streamed cell refreshed the heartbeat, so expiry is measured
     from it *)
  Alcotest.(check int) "fresh lease survives" 0
    (List.length (Lease.expire t ~now:150L ~ttl_ns:100L));
  (match Lease.expire t ~now:201L ~ttl_ns:100L with
  | [ (l', w) ] ->
      Alcotest.(check int) "expired lease" l.Lease.lease_id l'.Lease.lease_id;
      Alcotest.(check int) "expired worker" 0 w
  | other -> Alcotest.failf "%d leases expired" (List.length other));
  (* the uncollected remainder is leasable again; the collected cell is
     not re-granted *)
  let l2 = Option.get (Lease.next t ~worker:1 ~now:300L) in
  Alcotest.(check (pair int int)) "requeued range" (1, 8)
    (l2.Lease.lo, l2.Lease.hi);
  (* worker death requeues the same way *)
  (match Lease.release_worker t ~worker:1 with
  | [ l' ] -> Alcotest.(check int) "released" l2.Lease.lease_id l'.Lease.lease_id
  | other -> Alcotest.failf "%d leases released" (List.length other));
  let l3 = Option.get (Lease.next t ~worker:2 ~now:400L) in
  Alcotest.(check (pair int int)) "re-requeued range" (1, 8)
    (l3.Lease.lo, l3.Lease.hi)

let test_lease_generations () =
  let t = Lease.create ~chunk:2 ~boundaries:[ (0, 4); (4, 8) ] () in
  Alcotest.(check int) "frontier opens at 0" 0 (Lease.frontier t);
  let l1 = Option.get (Lease.next t ~worker:0 ~now:0L) in
  let l2 = Option.get (Lease.next t ~worker:1 ~now:0L) in
  (* the whole frontier generation is covered by live leases: the next
     generation must NOT open early *)
  Alcotest.(check bool) "no cross-generation lease" true
    (Lease.next t ~worker:2 ~now:0L = None);
  List.iter
    (fun i -> ignore (Lease.record t ~lease_id:l1.Lease.lease_id ~now:1L (mk_cell i)))
    [ 0; 1 ];
  Lease.finish t ~lease_id:l1.Lease.lease_id;
  Alcotest.(check bool) "generation still incomplete" true
    (Lease.next t ~worker:2 ~now:1L = None);
  List.iter
    (fun i -> ignore (Lease.record t ~lease_id:l2.Lease.lease_id ~now:2L (mk_cell i)))
    [ 2; 3 ];
  Lease.finish t ~lease_id:l2.Lease.lease_id;
  Alcotest.(check int) "frontier advanced" 1 (Lease.frontier t);
  let l3 = Option.get (Lease.next t ~worker:2 ~now:3L) in
  Alcotest.(check (pair int int)) "generation-1 lease" (4, 6)
    (l3.Lease.lo, l3.Lease.hi);
  Alcotest.(check int) "generation-1 sync prefix" 4 (Lease.sync_upto t l3)

let test_lease_prefill () =
  let t = Lease.create ~chunk:4 ~boundaries:[ (0, 6) ] () in
  Lease.prefill t [ mk_cell 0; mk_cell 1; mk_cell 5; mk_cell 99 ];
  Alcotest.(check int) "prefilled" 3 (Lease.collected t);
  let l = Option.get (Lease.next t ~worker:0 ~now:0L) in
  (* the free run stops at the already-collected cell 5 *)
  Alcotest.(check (pair int int)) "lease skips known cells" (2, 5)
    (l.Lease.lo, l.Lease.hi);
  List.iter
    (fun i -> ignore (Lease.record t ~lease_id:l.Lease.lease_id ~now:1L (mk_cell i)))
    [ 2; 3; 4 ];
  Lease.finish t ~lease_id:l.Lease.lease_id;
  Alcotest.(check bool) "complete" true (Lease.complete t);
  check_cells "index order with prefill"
    (List.map mk_cell [ 0; 1; 2; 3; 4; 5 ])
    (Lease.cells t)

(* --- scratch journal (append mode) --- *)

let test_journal_append () =
  let path = Filename.temp_file "dist_scratch" ".jsonl" in
  Sys.remove path;
  let header =
    Journal.make_header ~campaign:"t" ~ident:[ ("a", "1") ] ~scale:[]
  in
  (match Journal.append ~path header with
  | Error e -> Alcotest.failf "fresh append: %s" (Journal.error_to_string e)
  | Ok (w, cells) ->
      Alcotest.(check int) "fresh file has no cells" 0 (List.length cells);
      Journal.write_cell w (mk_cell 1);
      Journal.write_cell w (mk_cell 0);
      Journal.commit w);
  (* reopen: arrival order preserved, appends continue in place *)
  (match Journal.append ~path header with
  | Error e -> Alcotest.failf "reopen: %s" (Journal.error_to_string e)
  | Ok (w, cells) ->
      check_cells "arrival order" [ mk_cell 1; mk_cell 0 ] cells;
      Journal.write_cell w (mk_cell 2);
      Journal.commit w);
  (* a torn final line is dropped, the good prefix survives *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"torn";
  close_out oc;
  (match Journal.append ~path header with
  | Error e -> Alcotest.failf "torn reopen: %s" (Journal.error_to_string e)
  | Ok (w, cells) ->
      check_cells "torn tail dropped"
        [ mk_cell 1; mk_cell 0; mk_cell 2 ]
        cells;
      Journal.commit w);
  (* identity mismatch still refused *)
  let other =
    Journal.make_header ~campaign:"t" ~ident:[ ("a", "2") ] ~scale:[]
  in
  (match Journal.append ~path other with
  | Error (Journal.Mismatch _) -> ()
  | _ -> Alcotest.fail "identity mismatch accepted");
  Sys.remove path

(* --- loopback fabric integration --- *)

let with_sock f =
  let path = Filename.temp_file "dist" ".sock" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Proto.Unix_sock path))

let ground_truth spec =
  let cells = ref [] in
  let (_ : Spec.summary) =
    Spec.run_local ~jobs:1 ~sink:(fun c -> cells := c :: !cells) spec
  in
  List.rev !cells

(* run a coordinator over [clients] (each a thunk spawned in its own
   domain) and return the collected cell set *)
let fabric ?chunk ~workers ~clients spec =
  with_sock @@ fun addr ->
  let doms = List.map (fun th -> Domain.spawn (fun () -> th addr)) clients in
  let res = Coordinator.serve ~addr ~spec ~workers ?chunk () in
  List.iter Domain.join doms;
  match res with
  | Ok cells -> cells
  | Error e -> Alcotest.failf "coordinator: %s" e

let worker addr =
  match Dist_worker.run ~addr ~jobs:1 () with
  | Ok (_ : int) -> ()
  | Error e -> Alcotest.failf "worker: %s" e

let test_fabric_table () =
  let spec = small_spec "table4" in
  let truth = ground_truth spec in
  let cells =
    fabric ~chunk:5 ~workers:2 ~clients:[ worker; worker ] spec
  in
  check_cells "table4 grid over 2 workers" truth cells;
  (* the merge of the collected set replays without executing: its
     journal stream is the single-process stream *)
  let merged = ref [] in
  let (_ : Spec.summary) =
    Spec.run_local ~jobs:1 ~sink:(fun c -> merged := c :: !merged)
      ~resume:cells spec
  in
  check_cells "merged journal stream" truth (List.rev !merged)

let test_fabric_fuzz () =
  (* two generations: leases cross a sync barrier, so workers run the
     frontier only after receiving the complete prefix *)
  let spec =
    match
      Spec.make ~campaign:"fuzz" ~n:4 ~config_ids:[ 1; 12 ] ~gen_size:2 ()
    with
    | Ok s -> s
    | Error m -> Alcotest.failf "spec: %s" m
  in
  Alcotest.(check int) "two generations" 2
    (List.length (Spec.boundaries spec));
  let truth = ground_truth spec in
  let cells = fabric ~workers:2 ~clients:[ worker; worker ] spec in
  check_cells "fuzz generations over 2 workers" truth cells

(* a protocol-conformant client that takes a lease, streams half of it
   in reverse order with a duplicate, then dies without Done — the
   torn-worker case the lease tracker must absorb *)
let half_shard_client truth addr =
  let sa =
    match Proto.sockaddr_of addr with
    | Ok s -> s
    | Error e -> failwith e
  in
  let rec conn tries =
    let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        conn (tries - 1)
  in
  let fd = conn 100 in
  let dec = Wire.decoder () in
  let buf = Bytes.create 4096 in
  let send msg =
    let s = Wire.frame (Proto.encode msg) in
    ignore (Unix.write_substring fd s 0 (String.length s))
  in
  let rec recv () =
    match Wire.next dec with
    | `Frame p -> (
        match Proto.decode p with Ok m -> m | Error e -> failwith e)
    | `Corrupt e -> failwith e
    | `Awaiting -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> failwith "closed"
        | n ->
            Wire.feed dec buf n;
            recv ())
  in
  send (Proto.Hello { proto = Proto.version; pid = 0; host = "half" });
  let rec until_lease () =
    match recv () with
    | Proto.Lease { lease_id; lo; hi; _ } -> (lease_id, lo, hi)
    | _ -> until_lease ()
  in
  let lease_id, lo, hi = until_lease () in
  let half = lo + ((hi - lo) / 2) in
  let mine =
    List.filter
      (fun c -> c.Journal.index >= lo && c.Journal.index < half)
      truth
  in
  (* reverse order, then one duplicate: arrival order must not matter *)
  List.iter
    (fun cell -> send (Proto.Cell { lease_id; cell }))
    (List.rev mine);
  (match mine with
  | cell :: _ -> send (Proto.Cell { lease_id; cell })
  | [] -> ());
  (* die mid-lease: no Done, just a dropped connection *)
  Unix.close fd

(* the fleet aggregator riding a real fabric run: per-worker cell
   attribution must cover the grid, and the status line must survive a
   decode/re-encode roundtrip *)
let test_fabric_fleet () =
  let spec = small_spec "table4" in
  let truth = ground_truth spec in
  with_sock @@ fun addr ->
  let fleet = Fleet.create ~total:(List.length truth) ~now:(Mclock.now_ns ()) () in
  let doms = [ Domain.spawn (fun () -> worker addr) ] in
  let res = Coordinator.serve ~addr ~spec ~workers:1 ~chunk:5 ~fleet () in
  List.iter Domain.join doms;
  let cells =
    match res with
    | Ok c -> c
    | Error e -> Alcotest.failf "coordinator: %s" e
  in
  check_cells "fleet-observed run still byte-identical" truth cells;
  let snap =
    Fleet.snapshot fleet ~now:(Mclock.now_ns ())
      ~collected:(List.length cells) ~in_flight:0
  in
  let worker_cells =
    List.fold_left (fun a (r : Fleet.row) -> a + r.Fleet.cells) 0 snap.Fleet.rows
  in
  Alcotest.(check int) "per-worker cells cover the grid"
    (List.length truth)
    (worker_cells + snap.Fleet.local_cells);
  Alcotest.(check bool) "wire bytes counted" true
    (List.for_all
       (fun (r : Fleet.row) -> r.Fleet.bytes_in > 0 && r.Fleet.bytes_out > 0)
       snap.Fleet.rows);
  let line = Fleet.snapshot_to_line ~campaign:"table4" ~phase:"done" snap in
  (match Fleet.snapshot_of_line line with
  | Ok (c, p, s2) ->
      Alcotest.(check string) "campaign" "table4" c;
      Alcotest.(check string) "phase" "done" p;
      Alcotest.(check string)
        "snapshot line roundtrips" line
        (Fleet.snapshot_to_line ~campaign:c ~phase:p s2)
  | Error e -> Alcotest.failf "status line: %s" e);
  let table = Fleet.to_table ~campaign:"table4" ~phase:"done" snap in
  Alcotest.(check bool) "table renders a worker row" true
    (String.length table > 0)

let test_fabric_torn_worker () =
  let spec = small_spec "table4" in
  let truth = ground_truth spec in
  let cells =
    fabric ~chunk:24 ~workers:2
      ~clients:[ half_shard_client truth; worker ]
      spec
  in
  check_cells "mid-lease death recovered byte-identically" truth cells

let () =
  Alcotest.run "dist"
    [
      ( "wire",
        [
          Alcotest.test_case "frame round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "torn frames await" `Quick test_wire_torn;
          Alcotest.test_case "corruption detected, sticky" `Quick
            test_wire_corrupt;
        ] );
      ( "proto",
        [
          Alcotest.test_case "message round-trips" `Quick test_proto_roundtrip;
          Alcotest.test_case "checksum mismatch rejected" `Quick
            test_proto_checksum;
          Alcotest.test_case "old-format peer compatibility" `Quick
            test_proto_old_format;
          Alcotest.test_case "address parsing" `Quick test_addr_parse;
        ] );
      ( "lease",
        [
          Alcotest.test_case "lifecycle, dup, out-of-order" `Quick
            test_lease_lifecycle;
          Alcotest.test_case "expiry and worker death requeue" `Quick
            test_lease_expiry;
          Alcotest.test_case "generation barriers" `Quick
            test_lease_generations;
          Alcotest.test_case "resume prefill" `Quick test_lease_prefill;
        ] );
      ( "scratch",
        [ Alcotest.test_case "append journal" `Quick test_journal_append ] );
      ( "fabric",
        [
          Alcotest.test_case "table grid byte-identical" `Slow
            test_fabric_table;
          Alcotest.test_case "fuzz generations byte-identical" `Slow
            test_fabric_fuzz;
          Alcotest.test_case "worker death mid-lease" `Slow
            test_fabric_torn_worker;
          Alcotest.test_case "fleet aggregation over a live run" `Slow
            test_fabric_fleet;
        ] );
    ]
