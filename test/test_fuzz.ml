(* The coverage-guided fuzzing loop: covmap determinism, the -j-invariance
   and resume contracts inherited from the execution pool, and the
   --no-feedback degradation to a plain blind sweep. Tiny budgets and a
   two-configuration matrix keep every case CI-sized. *)

let config_ids = [ 1; 12 ]
let budget = 6
let gen_size = 3
let seed = 11

let run ?(jobs = 2) ?(feedback = true) ?sink ?resume () =
  Fuzz_loop.run ~jobs ~budget ~seed ~config_ids ~feedback ~gen_size ?sink
    ?resume ()

(* --- covmap ----------------------------------------------------------- *)

let test_covmap_deterministic () =
  let tc, _ =
    Generate.generate ~cfg:(Gen_config.scaled Gen_config.All) ~seed:3 ()
  in
  let features = Features.of_testcase tc in
  let stats =
    {
      Interp.steps = 1234;
      barriers = 8;
      atomics = 0;
      race_checks = 17;
      prof = [];
    }
  in
  let idx () =
    Covmap.indices ~features ~config:12 ~opt:true ~divergent:false
      ~outcome:(Outcome.Success "out: 1") ~stats
  in
  Alcotest.(check (list int)) "same inputs, same indices" (idx ()) (idx ());
  List.iter
    (fun i ->
      Alcotest.(check bool) "index in range" true (i >= 0 && i < Covmap.size))
    (idx ());
  (* each signature dimension moves at least one index *)
  let base = idx () in
  let vary ~msg indices =
    Alcotest.(check bool) msg true (indices <> base)
  in
  vary ~msg:"config moves the signature"
    (Covmap.indices ~features ~config:13 ~opt:true ~divergent:false
       ~outcome:(Outcome.Success "out: 1") ~stats);
  vary ~msg:"opt level moves the signature"
    (Covmap.indices ~features ~config:12 ~opt:false ~divergent:false
       ~outcome:(Outcome.Success "out: 1") ~stats);
  vary ~msg:"outcome class moves the signature"
    (Covmap.indices ~features ~config:12 ~opt:true ~divergent:false
       ~outcome:(Outcome.Crash "sig") ~stats);
  vary ~msg:"behaviour bucket moves the signature"
    (Covmap.indices ~features ~config:12 ~opt:true ~divergent:false
       ~outcome:(Outcome.Success "out: 1")
       ~stats:{ stats with Interp.steps = 1234 * 64 });
  (* log2 bucketing: nearby tallies share a signature *)
  Alcotest.(check (list int)) "nearby tallies bucket together" base
    (Covmap.indices ~features ~config:12 ~opt:true ~divergent:false
       ~outcome:(Outcome.Success "out: 1")
       ~stats:{ stats with Interp.steps = 1235 })

let test_covmap_bitmap () =
  let m = Covmap.create () in
  Alcotest.(check int) "fresh map is empty" 0 (Covmap.count m);
  Alcotest.(check int) "three new bits" 3 (Covmap.add_all m [ 1; 99; 65535 ]);
  Alcotest.(check int) "re-adding lights nothing" 0 (Covmap.add_all m [ 1; 99 ]);
  Alcotest.(check int) "population" 3 (Covmap.count m);
  Alcotest.(check bool) "mem set" true (Covmap.mem m 99);
  Alcotest.(check bool) "mem unset" false (Covmap.mem m 100);
  let c = Covmap.copy m in
  ignore (Covmap.add_all c [ 100 ]);
  Alcotest.(check bool) "copy is independent" false (Covmap.mem m 100);
  Alcotest.(check bool) "hex digests differ" false
    (String.equal (Covmap.to_hex m) (Covmap.to_hex c))

let test_covmap_hex_merge () =
  let m = Covmap.create () in
  ignore (Covmap.add_all m [ 0; 7; 4095; 65535 ]);
  (match Covmap.of_hex (Covmap.to_hex m) with
  | None -> Alcotest.fail "own hex digest rejected"
  | Some m' ->
      Alcotest.(check string) "hex round-trip byte-identical" (Covmap.to_hex m)
        (Covmap.to_hex m');
      Alcotest.(check int) "population survives" (Covmap.count m)
        (Covmap.count m'));
  Alcotest.(check bool) "wrong length rejected" true (Covmap.of_hex "ab" = None);
  Alcotest.(check bool) "non-hex rejected" true
    (Covmap.of_hex (String.make (String.length (Covmap.to_hex m)) 'z') = None);
  let a = Covmap.create () and b = Covmap.create () in
  ignore (Covmap.add_all a [ 1; 2; 3 ]);
  ignore (Covmap.add_all b [ 3; 4; 65535 ]);
  Alcotest.(check int) "merge counts only fresh bits" 2 (Covmap.merge a b);
  Alcotest.(check int) "union population" 5 (Covmap.count a);
  Alcotest.(check int) "re-merge is a no-op" 0 (Covmap.merge a b);
  Alcotest.(check int) "source untouched" 3 (Covmap.count b)

(* --- the loop's determinism contracts --------------------------------- *)

(* everything the loop promises to keep byte-identical: the rendered
   report (generations + triage), the coverage bitmap, the corpus pool
   (hashes, origins, energies) and the exemplar texts *)
let fingerprint (r : Fuzz_loop.result) =
  String.concat "\n"
    (Fuzz_loop.to_table r :: Covmap.to_hex r.Fuzz_loop.covmap
    :: List.map
         (fun (e : Seedpool.entry) ->
           Printf.sprintf "%d %s %d %d %.4f" e.Seedpool.id e.Seedpool.hash
             e.Seedpool.gen e.Seedpool.new_bits e.Seedpool.energy)
         (Seedpool.entries r.Fuzz_loop.pool)
    @ List.map fst r.Fuzz_loop.exemplar_texts)

let test_jobs_invariant () =
  let r1 = run ~jobs:1 () in
  let r4 = run ~jobs:4 () in
  Alcotest.(check string) "-j 1 and -j 4 byte-identical" (fingerprint r1)
    (fingerprint r4);
  Alcotest.(check int) "budget honoured" budget r1.Fuzz_loop.kernels_run;
  Alcotest.(check int) "cells accounted"
    (budget * Fuzz_loop.cells_per_kernel ~config_ids ())
    r1.Fuzz_loop.cells_run

let test_resume_equivalence () =
  (* reference: uninterrupted journalled run *)
  let collected = ref [] in
  let r_ref = run ~sink:(fun c -> collected := c :: !collected) () in
  let all_cells = List.rev !collected in
  let n = List.length all_cells in
  Alcotest.(check int) "journal covers every cell" r_ref.Fuzz_loop.cells_run n;
  (* resume from assorted prefixes, including one cutting a generation
     mid-way, at different -j: results must be byte-identical *)
  let cells_per_gen = gen_size * Fuzz_loop.cells_per_kernel ~config_ids () in
  List.iter
    (fun k ->
      let prefix = List.filteri (fun i _ -> i < k) all_cells in
      let resumed = ref [] in
      let r =
        run ~jobs:3 ~resume:prefix
          ~sink:(fun c -> resumed := c :: !resumed)
          ()
      in
      Alcotest.(check string)
        (Printf.sprintf "resume from %d/%d cells" k n)
        (fingerprint r_ref) (fingerprint r);
      (* the rewritten journal is also byte-equivalent *)
      List.iter2
        (fun (a : Journal.cell) (b : Journal.cell) ->
          Alcotest.(check bool) "journal cell identical" true
            (a.Journal.index = b.Journal.index
            && Journal.key a = Journal.key b
            && a.Journal.note = b.Journal.note
            && List.for_all2 Outcome.equal a.Journal.outcomes b.Journal.outcomes))
        all_cells (List.rev !resumed))
    [ 0; cells_per_gen / 2; cells_per_gen; cells_per_gen + 3; n ]

(* --- --no-feedback degrades to a blind sweep -------------------------- *)

let test_no_feedback_is_blind_sweep () =
  let r = run ~feedback:false () in
  (* no mutants anywhere, and the pool only holds generator kernels *)
  List.iter
    (fun (g : Fuzz_loop.gen_stat) ->
      Alcotest.(check int)
        (Printf.sprintf "generation %d has no mutants" g.Fuzz_loop.gen)
        0 g.Fuzz_loop.mutants)
    r.Fuzz_loop.generations;
  (* the kernel sequence is the paper's sweep: modes round-robin over
     consecutive seeds, counter-sharing seeds skipped *)
  let expected =
    let rec collect acc counter =
      if List.length acc >= budget then List.rev acc
      else begin
        let mode =
          List.nth Gen_config.all_modes
            (counter mod List.length Gen_config.all_modes)
        in
        let tc, info =
          Generate.generate ~cfg:(Gen_config.scaled mode) ~seed:(seed + counter) ()
        in
        if info.Generate.counter_sharing then collect acc (counter + 1)
        else collect ((Corpus.hash_text (Pp.program_to_string tc.Ast.prog)) :: acc) (counter + 1)
      end
    in
    collect [] 0
  in
  let pool_hashes =
    List.map (fun (e : Seedpool.entry) -> e.Seedpool.hash)
      (Seedpool.entries r.Fuzz_loop.pool)
  in
  (* every admitted seed is one of the sweep's kernels, in sweep order *)
  let rec subsequence xs = function
    | [] -> xs = []
    | y :: ys -> ( match xs with
        | [] -> true
        | x :: xs' -> if String.equal x y then subsequence xs' ys else subsequence xs ys)
  in
  Alcotest.(check bool) "pool is a subsequence of the blind sweep" true
    (subsequence pool_hashes expected);
  List.iter
    (fun (e : Seedpool.entry) ->
      match e.Seedpool.origin with
      | Seedpool.Generated _ -> ()
      | Seedpool.Mutated _ -> Alcotest.fail "mutant admitted without feedback")
    (Seedpool.entries r.Fuzz_loop.pool)

(* --- triage and corpus plumbing --------------------------------------- *)

let test_findings_archive () =
  let r = run () in
  let entries = Fuzz_loop.finding_entries r in
  Alcotest.(check int) "one corpus entry per bucket"
    (List.length r.Fuzz_loop.buckets)
    (List.length entries);
  let dir = Filename.temp_file "fuzz_corpus" "" in
  Sys.remove dir;
  (match Corpus.add_all ~dir entries with
  | Error m -> Alcotest.fail m
  | Ok _ -> ());
  (* the index is content-addressed: pool entries printing identically
     share one line, so the archive count is the distinct-hash count *)
  let distinct_pool_hashes =
    List.length
      (List.sort_uniq String.compare
         (List.map
            (fun (e : Seedpool.entry) -> e.Seedpool.hash)
            (Seedpool.entries r.Fuzz_loop.pool)))
  in
  (match Seedpool.persist r.Fuzz_loop.pool ~dir with
  | Error m -> Alcotest.fail m
  | Ok n ->
      Alcotest.(check int) "every distinct pool kernel archived"
        distinct_pool_hashes n);
  (* the archive round-trips through the one-pass loader *)
  match Corpus.load_all ~dir with
  | Error m -> Alcotest.fail m
  | Ok loaded ->
      Alcotest.(check int) "index covers findings + seeds"
        (List.length entries + distinct_pool_hashes)
        (List.length loaded);
      List.iter
        (fun ((e : Corpus.entry), text) ->
          Alcotest.(check string) "content address intact" e.Corpus.hash
            (Corpus.hash_text text))
        loaded

let () =
  Alcotest.run "fuzz"
    [
      ( "covmap",
        [
          Alcotest.test_case "signature determinism" `Quick test_covmap_deterministic;
          Alcotest.test_case "bitmap ops" `Quick test_covmap_bitmap;
          Alcotest.test_case "hex round-trip + merge" `Quick
            test_covmap_hex_merge;
        ] );
      ( "loop",
        [
          Alcotest.test_case "byte-identical across -j" `Slow test_jobs_invariant;
          Alcotest.test_case "resume equivalence" `Slow test_resume_equivalence;
          Alcotest.test_case "--no-feedback = blind sweep" `Slow
            test_no_feedback_is_blind_sweep;
        ] );
      ( "corpus",
        [ Alcotest.test_case "findings + pool archive" `Slow test_findings_archive ] );
    ]
