(* The telemetry subsystem: spans, the metrics registry, Chrome-trace
   export and the progress line — and the property the whole thing hangs
   off: telemetry observes the deterministic campaign surface without
   perturbing it. Metric totals fed from the ordered result stream are
   -j-invariant; tables and journal bytes are identical with tracing on
   and off. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

(* --- spans --- *)

let test_span_disabled_records_nothing () =
  Span.reset ();
  let r = Span.with_ ~cat:"gen" "generate" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_ is transparent" 42 r;
  Alcotest.(check int) "no spans while disabled" 0 (List.length (Span.drain ()))

let test_span_records_and_survives_raise () =
  Span.reset ();
  Span.enable ();
  Fun.protect ~finally:Span.disable (fun () ->
      ignore (Span.with_ ~cat:"gen" "generate" (fun () -> Sys.opaque_identity 1));
      Span.set_task 7;
      (try Span.with_ ~cat:"exec" "exec:1+" (fun () -> failwith "boom")
       with Failure _ -> ());
      Span.clear_task ());
  let spans = Span.drain () in
  Alcotest.(check int) "crashing scope still recorded" 2 (List.length spans);
  List.iter
    (fun (s : Span.t) ->
      Alcotest.(check bool) "duration non-negative" true (s.Span.dur_ns >= 0L))
    spans;
  let exec = List.find (fun (s : Span.t) -> String.equal s.Span.cat "exec") spans in
  Alcotest.(check int) "pool task index tagged" 7 exec.Span.task;
  Alcotest.(check int) "drain empties the buffers" 0 (List.length (Span.drain ()))

(* --- Chrome trace export --- *)

let test_trace_export () =
  Span.reset ();
  Span.enable ();
  Fun.protect ~finally:Span.disable (fun () ->
      ignore (Span.with_ ~cat:"gen" "generate" (fun () -> Sys.opaque_identity 1));
      ignore (Span.with_ ~cat:"exec" "exec:1+" (fun () -> Sys.opaque_identity 2)));
  let spans = Span.drain () in
  let path = Filename.temp_file "test_obs_trace" ".json" in
  Trace.write ~path spans;
  let body = read_file path in
  Sys.remove path;
  match Jsonl.of_string (String.trim body) with
  | Error e -> Alcotest.failf "trace does not parse: %s" e
  | Ok j ->
      let events =
        match Jsonl.member "traceEvents" j with
        | Some (Jsonl.List l) -> l
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let phase e = Option.bind (Jsonl.member "ph" e) Jsonl.get_str in
      let xs = List.filter (fun e -> phase e = Some "X") events in
      let ms = List.filter (fun e -> phase e = Some "M") events in
      Alcotest.(check int) "one complete event per span" (List.length spans)
        (List.length xs);
      Alcotest.(check bool) "process_name metadata present" true (ms <> []);
      List.iter
        (fun e ->
          List.iter
            (fun k ->
              if Jsonl.member k e = None then Alcotest.failf "X event lacks %S" k)
            [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ];
          match Option.bind (Jsonl.member "dur" e) Jsonl.get_int with
          | Some d ->
              Alcotest.(check bool) "durations clamped to >= 1us" true (d >= 1)
          | None -> Alcotest.fail "dur is not an int")
        xs

(* --- metrics registry --- *)

let test_metrics_counters_and_json () =
  Metrics.reset ();
  let c = Metrics.counter "test.alpha" in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" 5 (Metrics.value c);
  Alcotest.(check int) "same name finds the same cell" 5
    (Metrics.value (Metrics.counter "test.alpha"));
  let j = Metrics.to_json () in
  (match Jsonl.of_string (Jsonl.to_string j) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON does not round-trip: %s" e);
  match Jsonl.member "counters" j with
  | Some counters -> (
      match Option.bind (Jsonl.member "test.alpha" counters) Jsonl.get_int with
      | Some v -> Alcotest.(check int) "exported value" 5 v
      | None -> Alcotest.fail "counter missing from JSON")
  | None -> Alcotest.fail "no counters object"

let test_histogram_bucketing () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 1024; 1500 ];
  let buckets = List.assoc "test.hist" (Metrics.histograms ()) in
  Alcotest.(check (list (pair int int)))
    "log2 buckets: <=1 share floor 1; [2,3] floor 2; [1024,1500] floor 1024"
    [ (1, 2); (2, 2); (4, 1); (1024, 2) ]
    buckets

(* exactness over crafted bucket contents: 5 observations in the floor-1
   bucket, 4 in floor-4, 1 in floor-64 — every percentile is a known
   cumulative-rank lookup, nothing interpolated *)
let test_histogram_percentiles () =
  Metrics.reset ();
  let h = Metrics.histogram "test.pct" in
  List.iter (Metrics.observe h) [ 0; 1; 1; 1; 1; 4; 5; 6; 7; 64 ];
  let pct p = Metrics.percentile h p in
  Alcotest.(check (option int)) "p0 clamps to rank 1" (Some 1) (pct 0);
  Alcotest.(check (option int)) "p50 = rank 5 -> floor 1" (Some 1) (pct 50);
  Alcotest.(check (option int)) "p51 = rank 6 -> floor 4" (Some 4) (pct 51);
  Alcotest.(check (option int)) "p90 = rank 9 -> floor 4" (Some 4) (pct 90);
  Alcotest.(check (option int)) "p99 = rank 10 -> floor 64" (Some 64) (pct 99);
  Alcotest.(check (option int)) "p100 -> last bucket" (Some 64) (pct 100);
  Alcotest.(check (option int))
    "empty histogram has no percentiles" None
    (Metrics.percentile (Metrics.histogram "test.pct.empty") 50);
  (* the JSON export carries the same summaries *)
  let j = Metrics.to_json () in
  let hist =
    Option.bind (Jsonl.member "histograms" j) (Jsonl.member "test.pct")
  in
  (match Option.bind hist (Jsonl.member "p50") with
  | Some (Jsonl.Int v) -> Alcotest.(check int) "p50 in to_json" 1 v
  | _ -> Alcotest.fail "p50 missing from to_json");
  (match Option.bind hist (Jsonl.member "p99") with
  | Some (Jsonl.Int v) -> Alcotest.(check int) "p99 in to_json" 64 v
  | _ -> Alcotest.fail "p99 missing from to_json");
  match
    Option.bind
      (Option.bind (Jsonl.member "histograms" j) (Jsonl.member "test.pct.empty"))
      (Jsonl.member "p50")
  with
  | Some Jsonl.Null -> ()
  | _ -> Alcotest.fail "empty histogram should export null percentiles"

let test_prometheus_exposition () =
  Metrics.reset ();
  Metrics.add (Metrics.counter "test.prom.total") 7;
  let h = Metrics.histogram "test.prom.lat" in
  List.iter (Metrics.observe h) [ 1; 2; 8 ];
  let text = Metrics.to_prometheus () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition contains %S" needle)
        true (contains text needle))
    [
      "# TYPE test_prom_total counter";
      "test_prom_total 7";
      "# TYPE test_prom_lat histogram";
      (* power-of-two buckets as inclusive cumulative upper bounds:
         floor 1 -> le 1, floor 2 -> le 3, floor 8 -> le 15 *)
      "test_prom_lat_bucket{le=\"1\"} 1";
      "test_prom_lat_bucket{le=\"3\"} 2";
      "test_prom_lat_bucket{le=\"+Inf\"} 3";
      "test_prom_lat_count 3";
    ]

(* the merged fleet trace: one pid per process group, per-group epoch
   rebase (worker monotonic clocks are unrelated), thread per domain *)
let test_trace_groups_pid_separation () =
  let sp ~cat ~name ~t0 ~dur ~domain =
    { Span.cat; name; t0_ns = t0; dur_ns = dur; domain; task = -1; flow = -1; flow_n = 0 }
  in
  let coord =
    [ sp ~cat:"merge" ~name:"merge" ~t0:5_000_000L ~dur:1_000_000L ~domain:0 ]
  in
  let w1 =
    [
      sp ~cat:"exec" ~name:"exec:1+" ~t0:9_000_000_000L ~dur:2_000_000L
        ~domain:1;
      sp ~cat:"gen" ~name:"generate" ~t0:8_000_000_000L ~dur:1_000_000L
        ~domain:0;
    ]
  in
  let path = Filename.temp_file "test_obs_groups" ".json" in
  Trace.write_groups ~path
    [ ("coordinator", coord); ("worker 1 (host, pid 42)", w1) ];
  let body = read_file path in
  Sys.remove path;
  match Jsonl.of_string (String.trim body) with
  | Error e -> Alcotest.failf "grouped trace does not parse: %s" e
  | Ok j ->
      let events =
        match Jsonl.member "traceEvents" j with
        | Some (Jsonl.List l) -> l
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let phase e = Option.bind (Jsonl.member "ph" e) Jsonl.get_str in
      let pid e = Option.bind (Jsonl.member "pid" e) Jsonl.get_int in
      let xs = List.filter (fun e -> phase e = Some "X") events in
      Alcotest.(check (list int)) "distinct pid per group" [ 0; 1 ]
        (List.sort_uniq compare (List.filter_map pid xs));
      let labels =
        List.filter_map
          (fun e ->
            if
              phase e = Some "M"
              && Option.bind (Jsonl.member "name" e) Jsonl.get_str
                 = Some "process_name"
            then
              Option.bind (Jsonl.member "args" e) (fun a ->
                  Option.bind (Jsonl.member "name" a) Jsonl.get_str)
            else None)
          events
      in
      Alcotest.(check (list string)) "groups labelled in order"
        [ "coordinator"; "worker 1 (host, pid 42)" ]
        labels;
      let min_ts p =
        List.fold_left
          (fun acc e ->
            if pid e = Some p then
              match Option.bind (Jsonl.member "ts" e) Jsonl.get_int with
              | Some t -> min acc t
              | None -> acc
            else acc)
          max_int xs
      in
      Alcotest.(check int) "coordinator epoch rebased to 0" 0 (min_ts 0);
      Alcotest.(check int) "worker epoch rebased to 0" 0 (min_ts 1)

(* the causal-flow machinery: a lease span originating a window of flow
   ids must be stitched to the worker exec spans participating in them *)
let test_trace_flow_events () =
  let sp ~cat ~name ~t0 ~dur ~flow ~flow_n =
    {
      Span.cat;
      name;
      t0_ns = t0;
      dur_ns = dur;
      domain = 0;
      task = -1;
      flow;
      flow_n;
    }
  in
  let coord =
    [
      sp ~cat:"lease" ~name:"lease 0 [9,11)" ~t0:1_000_000L ~dur:9_000_000L
        ~flow:9 ~flow_n:2;
    ]
  in
  let w1 =
    [
      sp ~cat:"exec" ~name:"exec:9" ~t0:2_000_000L ~dur:1_000_000L ~flow:9
        ~flow_n:0;
      sp ~cat:"exec" ~name:"exec:10" ~t0:4_000_000L ~dur:1_000_000L ~flow:10
        ~flow_n:0;
      (* untagged span: must not join any flow *)
      sp ~cat:"gen" ~name:"generate" ~t0:3_000_000L ~dur:500_000L ~flow:(-1)
        ~flow_n:0;
    ]
  in
  let path = Filename.temp_file "test_obs_flow" ".json" in
  Trace.write_groups ~path [ ("coordinator", coord); ("worker 1", w1) ];
  let body = read_file path in
  Sys.remove path;
  match Jsonl.of_string (String.trim body) with
  | Error e -> Alcotest.failf "flow trace does not parse: %s" e
  | Ok j ->
      let events =
        match Jsonl.member "traceEvents" j with
        | Some (Jsonl.List l) -> l
        | _ -> Alcotest.fail "no traceEvents array"
      in
      let phase e = Option.bind (Jsonl.member "ph" e) Jsonl.get_str in
      let id e = Option.bind (Jsonl.member "id" e) Jsonl.get_int in
      let flows =
        List.filter
          (fun e -> match phase e with Some ("s" | "t" | "f") -> true | _ -> false)
          events
      in
      (* two flows, each source -> participant: one "s" + one "f" apiece *)
      Alcotest.(check int) "four flow events" 4 (List.length flows);
      let ids ph =
        List.sort compare
          (List.filter_map
             (fun e -> if phase e = Some ph then id e else None)
             flows)
      in
      Alcotest.(check (list int)) "flow starts per id" [ 9; 10 ] (ids "s");
      Alcotest.(check (list int)) "flow finishes per id" [ 9; 10 ] (ids "f");
      List.iter
        (fun e ->
          (match Option.bind (Jsonl.member "cat" e) Jsonl.get_str with
          | Some "flow" -> ()
          | _ -> Alcotest.fail "flow event lacks cat \"flow\"");
          if phase e = Some "f" then
            match Option.bind (Jsonl.member "bp" e) Jsonl.get_str with
            | Some "e" -> ()
            | _ -> Alcotest.fail "finish step lacks bp:\"e\" (enclosing bind)")
        flows

(* --- cost profiler --- *)

let cp ~khash ~config ~opt ~ticks constructs =
  {
    Costprof.khash;
    config;
    opt;
    ticks;
    constructs =
      List.map
        (fun (kind, loc, path, n) -> { Costprof.kind; loc; path; n })
        constructs;
  }

let test_costprof_accumulates_and_roundtrips () =
  Costprof.reset ();
  Alcotest.(check int) "fresh accumulator is empty" 0
    (List.length (Costprof.snapshot ()));
  (* same (khash, config, opt) key: cells merge, per-construct counts sum *)
  Costprof.record
    (cp ~khash:"aa" ~config:1 ~opt:"+" ~ticks:5
       [ ("binop", 3, "kernel:k;for", 5) ]);
  Costprof.record
    (cp ~khash:"aa" ~config:1 ~opt:"+" ~ticks:2
       [ ("binop", 3, "kernel:k;for", 2) ]);
  Costprof.record
    (cp ~khash:"aa" ~config:1 ~opt:"-" ~ticks:1
       [ ("if", 0, "kernel:k", 1) ]);
  let cells = Costprof.snapshot () in
  Costprof.reset ();
  Alcotest.(check int) "one cell per (khash, config, opt)" 2
    (List.length cells);
  let merged = List.find (fun c -> String.equal c.Costprof.opt "+") cells in
  Alcotest.(check int) "ticks summed across records" 7 merged.Costprof.ticks;
  (match merged.Costprof.constructs with
  | [ k ] -> Alcotest.(check int) "construct counts summed" 7 k.Costprof.n
  | l -> Alcotest.failf "expected one merged construct, got %d" (List.length l));
  let path = Filename.temp_file "test_obs_prof" ".jsonl" in
  Costprof.write ~path cells;
  (match Costprof.load ~path with
  | Error e -> Alcotest.failf "clean profile fails to load: %s" e
  | Ok (cells', torn) ->
      Alcotest.(check bool) "clean file is not torn" false torn;
      Alcotest.(check int) "roundtrip preserves cells" (List.length cells)
        (List.length cells');
      List.iter2
        (fun a b ->
          Alcotest.(check string) "khash" a.Costprof.khash b.Costprof.khash;
          Alcotest.(check int) "ticks" a.Costprof.ticks b.Costprof.ticks)
        cells cells');
  (* the report attributes every tick to a named construct *)
  let rep = Costprof.report cells in
  Alcotest.(check bool) "report names the hot construct" true
    (contains rep "binop");
  Alcotest.(check bool) "report shows full attribution" true
    (contains rep "100.0%");
  Sys.remove path

let test_costprof_torn_tail_recovery () =
  Costprof.reset ();
  Costprof.record
    (cp ~khash:"bb" ~config:2 ~opt:"+" ~ticks:3 [ ("for", 1, "kernel:k", 3) ]);
  let cells = Costprof.snapshot () in
  Costprof.reset ();
  let path = Filename.temp_file "test_obs_torn" ".jsonl" in
  Costprof.write ~path cells;
  (* a torn final line (the crash-mid-write case) is recoverable *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"h\":\"dead";
  close_out oc;
  (match Costprof.load ~path with
  | Error e -> Alcotest.failf "torn tail should recover, got: %s" e
  | Ok (cells', torn) ->
      Alcotest.(check bool) "torn flag raised" true torn;
      Alcotest.(check int) "clean prefix intact" (List.length cells)
        (List.length cells'));
  (* corruption anywhere but the final line is an error, not silently
     skipped: append a valid-looking second garbage line after the torn
     one so the damage is no longer tail-only *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "\n{\"h\":\"beef\"}\n";
  close_out oc;
  (match Costprof.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-file corruption must not load");
  Sys.remove path

(* --- progress line --- *)

let test_progress_line () =
  let path = Filename.temp_file "test_obs_progress" ".txt" in
  let oc = open_out path in
  let p = Progress.create ~out:oc ~min_interval_ms:0 ~label:"cells" ~total:3 () in
  Progress.step p ~tag:"ok";
  Progress.step p ~tag:"w";
  Progress.step p ~tag:"ok";
  Progress.finish p;
  close_out oc;
  let body = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "shows done/total" true (contains body "3/3");
  Alcotest.(check bool) "tallies classes in arrival order" true
    (contains body "ok:2" && contains body "w:1")

(* resumed/prefilled cells show in done/total but must not inflate the
   session's rate: only this session's steps feed the tallies *)
let test_progress_resumed_start () =
  let path = Filename.temp_file "test_obs_start" ".txt" in
  let oc = open_out path in
  let p =
    Progress.create ~out:oc ~min_interval_ms:0 ~start:2 ~label:"cells"
      ~total:4 ()
  in
  Progress.step p ~tag:"ok";
  Progress.step p ~tag:"ok";
  Progress.finish p;
  close_out oc;
  let body = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "prefill counts toward done/total" true
    (contains body "4/4");
  Alcotest.(check bool) "session tallies exclude the prefill" true
    (contains body "ok:2")

(* a non-tty out channel must degrade to plain newline updates: no
   carriage returns, no escape sequences, parseable by any log viewer *)
let test_progress_plain_fallback () =
  let path = Filename.temp_file "test_obs_plain" ".txt" in
  let oc = open_out path in
  Alcotest.(check bool) "file out detected as plain" true
    (Progress.detect_style oc = Progress.Plain);
  let p = Progress.create ~out:oc ~min_interval_ms:0 ~label:"cells" ~total:2 () in
  Progress.step p ~tag:"ok";
  Progress.step p ~tag:"ok";
  Progress.finish p;
  close_out oc;
  let body = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "no ANSI escapes on a non-tty" true
    (not (String.contains body '\027' || String.contains body '\r'));
  Alcotest.(check bool) "newline-terminated updates" true
    (String.length body > 0 && body.[String.length body - 1] = '\n');
  Alcotest.(check bool) "final state present" true (contains body "2/2")

let test_progress_ansi_style () =
  let path = Filename.temp_file "test_obs_ansi" ".txt" in
  let oc = open_out path in
  let p =
    Progress.create ~out:oc ~style:Progress.Ansi ~min_interval_ms:0
      ~label:"cells" ~total:1 ()
  in
  Progress.step p ~tag:"ok";
  Progress.finish p;
  close_out oc;
  let body = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "carriage-return redraw when forced to ANSI" true
    (String.contains body '\r' && contains body "\027[K")

(* --- host info --- *)

let test_hostinfo () =
  Alcotest.(check bool) "at least one core" true (Hostinfo.cores () >= 1);
  match Jsonl.of_string (Jsonl.to_string (Hostinfo.to_json ())) with
  | Ok j ->
      Alcotest.(check (option string)) "ocaml version exported"
        (Some Sys.ocaml_version)
        (Option.bind (Jsonl.member "ocaml" j) Jsonl.get_str)
  | Error e -> Alcotest.failf "host JSON does not round-trip: %s" e

(* --- the determinism contract on a real campaign --- *)

let per_mode = 2
let modes = [ Gen_config.Basic ]
let config_ids = [ 1; 19 ]

(* the counters under the -j-invariance contract: totals fed from the
   ordered result stream. Pool gauges (busy time, queue depth) are
   scheduling-dependent by design and excluded. *)
let deterministic_counters () =
  List.filter
    (fun (name, _) ->
      List.exists
        (fun p -> String.starts_with ~prefix:p name)
        [ "cells."; "interp."; "outcomes." ])
    (Metrics.counters ())

let run_and_snapshot jobs =
  Metrics.reset ();
  let table =
    Campaign.to_table (Campaign.run ~jobs ~per_mode ~modes ~config_ids ())
  in
  (table, deterministic_counters ())

let test_metrics_j_invariant () =
  let t1, c1 = run_and_snapshot 1 in
  let t4, c4 = run_and_snapshot 4 in
  Alcotest.(check string) "tables agree" t1 t4;
  Alcotest.(check (list (pair string int)))
    "deterministic counter totals agree across -j" c1 c4;
  Alcotest.(check bool) "cells were actually counted" true
    (match List.assoc_opt "cells.completed" c1 with
    | Some n -> n > 0
    | None -> false);
  Alcotest.(check bool) "interpreter work was tallied" true
    (match List.assoc_opt "interp.steps" c1 with
    | Some n -> n > 0
    | None -> false)

let run_with_telemetry enabled =
  Span.reset ();
  Metrics.reset ();
  if enabled then Span.enable ();
  let path = Filename.temp_file "test_obs_journal" ".jsonl" in
  let w =
    Journal.create ~path (Campaign.journal_header ~per_mode ~modes ~config_ids ())
  in
  let table =
    Campaign.to_table
      (Campaign.run ~jobs:2 ~per_mode ~modes ~config_ids
         ~sink:(Journal.write_cell w) ())
  in
  Journal.commit w;
  let journal = read_file path in
  Sys.remove path;
  Span.disable ();
  let spans = Span.drain () in
  (table, journal, List.length spans)

let test_telemetry_does_not_change_bytes () =
  let t_off, j_off, s_off = run_with_telemetry false in
  let t_on, j_on, s_on = run_with_telemetry true in
  Alcotest.(check string) "table bytes identical with tracing on" t_off t_on;
  Alcotest.(check string) "journal bytes identical with tracing on" j_off j_on;
  Alcotest.(check int) "no spans while disabled" 0 s_off;
  Alcotest.(check bool) "spans recorded while enabled" true (s_on > 0)

let run_with_profile enabled jobs =
  Metrics.reset ();
  Costprof.reset ();
  if enabled then Costprof.enable ();
  let table =
    Campaign.to_table (Campaign.run ~jobs ~per_mode ~modes ~config_ids ())
  in
  Costprof.disable ();
  let cells = Costprof.snapshot () in
  Costprof.reset ();
  (table, cells)

let profile_bytes cells =
  let path = Filename.temp_file "test_obs_profbytes" ".jsonl" in
  Costprof.write ~path cells;
  let body = read_file path in
  Sys.remove path;
  body

let test_costprof_leaves_bytes_alone () =
  let t_off, c_off = run_with_profile false 2 in
  let t_on, c_on = run_with_profile true 2 in
  Alcotest.(check string) "table bytes identical with profiling on" t_off t_on;
  Alcotest.(check int) "no cells recorded while disabled" 0
    (List.length c_off);
  Alcotest.(check bool) "cells recorded while enabled" true (c_on <> [])

let test_costprof_j_invariant () =
  let _, c1 = run_with_profile true 1 in
  let _, c4 = run_with_profile true 4 in
  Alcotest.(check string) "profile bytes identical across -j"
    (profile_bytes c1) (profile_bytes c4);
  (* the acceptance bar: the profile attributes the interpreter's work
     to named constructs — here the attribution is exact by design *)
  List.iter
    (fun (c : Costprof.cell) ->
      let sum =
        List.fold_left
          (fun acc (k : Costprof.construct) -> acc + k.Costprof.n)
          0 c.Costprof.constructs
      in
      Alcotest.(check int)
        (Printf.sprintf "cell %s c%d%s fully attributed" c.Costprof.khash
           c.Costprof.config c.Costprof.opt)
        c.Costprof.ticks sum)
    c1

(* --- ETA display --- *)

let test_progress_eta_string () =
  let path = Filename.temp_file "test_obs_eta" ".txt" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () ->
      close_out_noerr oc;
      Sys.remove path)
  @@ fun () ->
  let p =
    Progress.create ~out:oc ~style:Progress.Plain ~start:2 ~label:"x"
      ~total:4 ()
  in
  let now = Mclock.now_ns () in
  (* work remains but only prefill is done: rate is zero, no guess *)
  Alcotest.(check string) "prefill-only shows --:--" "--:--"
    (Progress.eta_string p now);
  Progress.step p ~tag:"ok";
  (* evaluate the ETA as if 10s had elapsed: 1 session cell done, 1 to
     go, so the extrapolation lands in seconds, not "--:--" *)
  let eta = Progress.eta_string p (Int64.add now 10_000_000_000L) in
  Alcotest.(check bool) "measured rate extrapolates" true
    (not (String.equal eta "--:--") && not (String.equal eta "0s"));
  Progress.step p ~tag:"ok";
  Alcotest.(check string) "nothing remaining shows 0s" "0s"
    (Progress.eta_string p (Mclock.now_ns ()))

let () =
  Alcotest.run "obs"
    [
      ( "span",
        [
          Alcotest.test_case "disabled is free" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "records + survives raise" `Quick
            test_span_records_and_survives_raise;
        ] );
      ( "trace",
        [
          Alcotest.test_case "chrome export" `Quick test_trace_export;
          Alcotest.test_case "grouped fleet export" `Quick
            test_trace_groups_pid_separation;
          Alcotest.test_case "causal flow events" `Quick
            test_trace_flow_events;
        ] );
      ( "costprof",
        [
          Alcotest.test_case "accumulate + roundtrip" `Quick
            test_costprof_accumulates_and_roundtrips;
          Alcotest.test_case "torn tail recovery" `Quick
            test_costprof_torn_tail_recovery;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + json" `Quick
            test_metrics_counters_and_json;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_bucketing;
          Alcotest.test_case "histogram percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
        ] );
      ( "progress",
        [
          Alcotest.test_case "line" `Quick test_progress_line;
          Alcotest.test_case "resumed start" `Quick test_progress_resumed_start;
          Alcotest.test_case "plain fallback" `Quick test_progress_plain_fallback;
          Alcotest.test_case "ansi style" `Quick test_progress_ansi_style;
          Alcotest.test_case "eta string" `Quick test_progress_eta_string;
        ] );
      ("host", [ Alcotest.test_case "info" `Quick test_hostinfo ]);
      ( "determinism",
        [
          Alcotest.test_case "metrics -j invariant" `Slow test_metrics_j_invariant;
          Alcotest.test_case "telemetry leaves bytes alone" `Slow
            test_telemetry_does_not_change_bytes;
          Alcotest.test_case "profiler leaves bytes alone" `Slow
            test_costprof_leaves_bytes_alone;
          Alcotest.test_case "profile -j invariant" `Slow
            test_costprof_j_invariant;
        ] );
    ]
