(* Optimisation passes: unit rewrites, the deliberate Fig. 2(b) bug variant,
   and the key property that correct pipelines preserve the reference
   semantics of generated programs. *)

open Build

let k body = kernel1 "k" body
let store e = assign (idx (v "out") tid_linear) (cast Ty.ulong e)

let std_pipeline =
  [ Const_fold.pass (); Simplify.pass (); Unroll.pass (); Dce.pass ();
    Const_fold.pass (); Simplify.pass () ]

(* --- const folding --- *)

let test_const_fold_exprs () =
  let check msg expected e =
    Alcotest.(check string) msg expected (Pp.expr_to_string (Const_fold.fold_expr e))
  in
  check "arith folds" "7" (ci 3 + ci 4);
  check "nested folds" "14" ((ci 3 + ci 4) * ci 2);
  check "comparison folds" "1" (ci 3 < ci 4);
  check "safe op folds via safe semantics" "2147483647"
    (Ast.Safe_binop (Op.Add, ci 2147483647, ci 1));
  check "division by zero folds to dividend" "5"
    (Ast.Safe_binop (Op.Div, ci 5, ci 0));
  check "builtin folds" "9" (Ast.Builtin (Op.Max, [ ci 4; ci 9 ]));
  check "rotate folds correctly" "2" (Ast.Builtin (Op.Rotate, [ ci 1; ci 1 ]));
  check "cast folds" "255U" (cast Ty.uchar (ci (-1)));
  check "ternary folds" "b" (cond (ci 1) (v "b") (v "c"));
  check "comma drops pure lhs" "b" (comma (ci 1) (v "b"));
  check "comma keeps impure lhs" "f() , b" (comma (call "f" []) (v "b"));
  check "shortcircuit false" "0" (Ast.Binop (Op.LogAnd, ci 0, call "f" []));
  check "shortcircuit true keeps rhs" "f() != 0"
    (Ast.Binop (Op.LogAnd, ci 3, call "f" []))

let test_rotate_bug_variant () =
  let u32 = { Ty.width = Ty.W32; sign = Ty.Unsigned } in
  (* the Fig. 2(b) shape *)
  let e =
    Ast.Builtin (Op.Rotate, [ vec2 u32 (cu 1) (cu 1); vec2 u32 (cu 0) (cu 0) ])
  in
  Alcotest.(check string) "buggy fold to all-ones"
    "(uint2)(4294967295U, 4294967295U)"
    (Pp.expr_to_string (Const_fold.fold_expr ~rotate_zero_bug:true e));
  (* the correct folder leaves vectors alone / the identity intact *)
  let scalar = Ast.Builtin (Op.Rotate, [ cu 1; cu 0 ]) in
  Alcotest.(check string) "correct fold" "1U"
    (Pp.expr_to_string (Const_fold.fold_expr scalar));
  Alcotest.(check string) "buggy scalar fold" "4294967295U"
    (Pp.expr_to_string (Const_fold.fold_expr ~rotate_zero_bug:true scalar))

(* --- simplify / dce / unroll units --- *)

let run_pass pass prog = pass.Pass.run prog

let test_simplify_constant_branches () =
  let prog =
    k [ if_else (ci 0) [ store (ci 1) ] [ store (ci 2) ] ]
  in
  let prog' = run_pass (Simplify.pass ()) prog in
  Alcotest.(check string) "else branch survives"
    (Outcome.to_string (Interp.run_outcome (testcase prog)))
    (Outcome.to_string (Interp.run_outcome (testcase prog')));
  let count = Ast.stmt_count prog' in
  Alcotest.(check bool) "branch eliminated" true Stdlib.(count <= 2)

let test_dce_drops_unused () =
  let prog =
    k [ decle "unused" Ty.int (ci 5); decle "used" Ty.int (ci 7); store (v "used") ]
  in
  let prog' = run_pass (Dce.pass ()) prog in
  let decls =
    Ast.fold_program_blocks
      (fun acc b ->
        Stdlib.( + ) acc
          (Ast.fold_stmts
            (fun n s -> match s with Ast.Decl _ -> Stdlib.(n + 1) | _ -> n)
             0 b))
      0 prog'
  in
  Alcotest.(check int) "one declaration left" 1 decls;
  Alcotest.(check string) "semantics preserved" "result: out: 7"
    (Outcome.to_string (Interp.run_outcome (testcase prog')))

let test_dce_keeps_impure_initialisers () =
  let f = func "f" Ty.int [] [ ret (ci 3) ] in
  let prog =
    kernel1 ~funcs:[ f ] "k"
      [ decle "x" Ty.int (call "f" []); store (ci 0) ]
  in
  let prog' = run_pass (Dce.pass ()) prog in
  Alcotest.(check bool) "call-initialised decl kept" true
    (Ast.exists_expr (function Ast.Call _ -> true | _ -> false) prog')

let test_unroll () =
  let prog = k [ decle "s" Ty.int (ci 0); for_up "i" ~from:0 ~below:3 [ assign_op Op.Add (v "s") (v "i") ]; store (v "s") ] in
  let prog' = run_pass (Unroll.pass ()) prog in
  Alcotest.(check bool) "loop gone" true
    (not (Ast.exists_stmt (function Ast.For _ -> true | _ -> false) prog'));
  Alcotest.(check string) "same sum" "result: out: 3"
    (Outcome.to_string (Interp.run_outcome (testcase prog')));
  (* loops above the unroll bound stay *)
  let big = k [ for_up "i" ~from:0 ~below:9 [ store (ci 0) ] ] in
  let big' = run_pass (Unroll.pass ()) big in
  Alcotest.(check bool) "big loop stays" true
    (Ast.exists_stmt (function Ast.For _ -> true | _ -> false) big')

(* --- the big property: pipelines preserve semantics --- *)

let test_pipeline_preserves_semantics () =
  List.iter
    (fun mode ->
      let cfg = Gen_config.scaled mode in
      for seed = 300 to 312 do
        let tc, info = Generate.generate ~cfg ~seed () in
        if not info.Generate.counter_sharing then begin
          let prog' = Pass.pipeline std_pipeline tc.Ast.prog in
          (match Typecheck.check_program prog' with
          | Ok () -> ()
          | Error m ->
              Alcotest.failf "[%s %d] optimised program ill-typed: %s"
                (Gen_config.mode_name mode) seed m);
          (* generous fuel: optimisation legitimately changes how much work
             a borderline kernel does before the budget runs out *)
          let config = { Interp.default_config with Interp.fuel = 3_000_000 } in
          let before = Interp.run_outcome ~config tc in
          let after = Interp.run_outcome ~config { tc with Ast.prog = prog' } in
          if not (Outcome.equal before after) then
            Alcotest.failf "[%s %d] pipeline changed semantics:\n%s\nvs\n%s"
              (Gen_config.mode_name mode) seed (Outcome.to_string before)
              (Outcome.to_string after)
        end
      done)
    Gen_config.all_modes

(* --- mutation --- *)

let test_mutate_deterministic_and_typed () =
  let cfg = Gen_config.scaled Gen_config.All in
  for seed = 400 to 412 do
    let tc, _ = Generate.generate ~cfg ~seed () in
    let m1 = Mutate.apply ~seed:77L tc.Ast.prog in
    let m2 = Mutate.apply ~seed:77L tc.Ast.prog in
    Alcotest.(check bool) "deterministic" true
      (String.equal (Pp.program_to_string m1) (Pp.program_to_string m2));
    (match Typecheck.check_program m1 with
    | Ok () -> ()
    | Error m -> Alcotest.failf "mutant ill-typed: %s" m);
    Alcotest.(check bool) "sites exist" true
      Stdlib.(Mutate.candidate_count tc.Ast.prog > 0)
  done

(* property: every mutant of every generated kernel re-typechecks — the
   contract that lets the fuzzing loop and the fault models trust
   Mutate.apply output without a per-mutant recovery path *)
let test_mutate_all_typecheck () =
  List.iter
    (fun mode ->
      let cfg = Gen_config.scaled mode in
      for seed = 500 to 507 do
        let tc, _ = Generate.generate ~cfg ~seed () in
        for mseed = 0 to 9 do
          let m =
            Mutate.apply
              ~seed:(Int64.of_int Stdlib.((seed * 100) + mseed))
              tc.Ast.prog
          in
          match Typecheck.check_program m with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "mutant (gen %d, mut %d, %s) ill-typed: %s" seed
                mseed (Gen_config.mode_name mode) e
        done
      done)
    [ Gen_config.Basic; Gen_config.Vector; Gen_config.Atomic_section; Gen_config.All ]

(* property: fixed-seed mutation is byte-deterministic across pool sizes —
   printed mutants from a -j 1 run and a -j 4 run are identical *)
let test_mutate_pool_invariant () =
  let cfg = Gen_config.scaled Gen_config.All in
  let kernels =
    List.init 6 (fun i -> fst (Generate.generate ~cfg ~seed:Stdlib.(520 + i) ()))
  in
  let tasks =
    List.concat_map
      (fun tc ->
        List.init 4 (fun m -> (tc, Int64.of_int Stdlib.(1 + (m * 7919)))))
      kernels
  in
  let render jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool
          ~f:(fun (tc, seed) ->
            Pp.program_to_string (Mutate.apply ~seed tc.Ast.prog))
          tasks)
  in
  List.iter2
    (fun a b -> Alcotest.(check string) "byte-identical across -j" a b)
    (render 1) (render 4)

let test_mutate_changes_something () =
  let cfg = Gen_config.scaled Gen_config.Basic in
  let changed = ref 0 and total = ref 0 in
  for seed = 420 to 450 do
    let tc, info = Generate.generate ~cfg ~seed () in
    if not info.Generate.counter_sharing then begin
      incr total;
      let m = Mutate.apply ~seed:(Int64.of_int Stdlib.(seed * 31)) tc.Ast.prog in
      if not (Outcome.equal (Interp.run_outcome tc) (Interp.run_outcome { tc with Ast.prog = m }))
      then incr changed
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some mutants misbehave (%d/%d)" !changed !total)
    true
    Stdlib.(!changed > 0)

let () =
  Alcotest.run "opt"
    [
      ( "const-fold",
        [
          Alcotest.test_case "expressions" `Quick test_const_fold_exprs;
          Alcotest.test_case "rotate bug variant" `Quick test_rotate_bug_variant;
        ] );
      ( "passes",
        [
          Alcotest.test_case "simplify branches" `Quick test_simplify_constant_branches;
          Alcotest.test_case "dce unused" `Quick test_dce_drops_unused;
          Alcotest.test_case "dce impure" `Quick test_dce_keeps_impure_initialisers;
          Alcotest.test_case "unroll" `Quick test_unroll;
          Alcotest.test_case "pipeline preserves semantics" `Slow
            test_pipeline_preserves_semantics;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "deterministic+typed" `Slow test_mutate_deterministic_and_typed;
          Alcotest.test_case "all mutants re-typecheck" `Slow test_mutate_all_typecheck;
          Alcotest.test_case "byte-deterministic across -j" `Slow test_mutate_pool_invariant;
          Alcotest.test_case "changes output" `Slow test_mutate_changes_something;
        ] );
    ]
