(* The execution pool and its determinism guarantee: order-preserving
   merges, exception isolation, domain-safe memoisation, and — the
   property the whole engine is built around — campaign tables that are
   byte-identical across -j values and across runs at the same seed. *)

(* --- pool unit semantics --- *)

let test_map_order_preserved () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int))
        "results in submission order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool ~f:(fun x -> x * x) xs));
  (* jobs <= 1 degrades to the sequential path *)
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "clamped to one runner" 1 (Pool.jobs pool);
      Alcotest.(check (list int)) "sequential map" [ 2; 4; 6 ]
        (Pool.map pool ~f:(fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_reuse_and_empty () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check (list int)) "empty input" [] (Pool.map pool ~f:Fun.id []);
      (* several batches through one pool *)
      for i = 1 to 5 do
        Alcotest.(check (list int))
          (Printf.sprintf "batch %d" i)
          (List.init 10 (fun x -> x + i))
          (Pool.map pool ~f:(fun x -> x + i) (List.init 10 Fun.id))
      done)

let test_exception_isolation () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
      (* try_map captures per task *)
      let rs = Pool.try_map pool ~f [ 1; 2; 3; 4; 5; 6 ] in
      let tags =
        List.map (function Ok x -> string_of_int x | Error _ -> "!") rs
      in
      Alcotest.(check (list string))
        "failures stay in their cells"
        [ "1"; "2"; "!"; "4"; "5"; "!" ] tags;
      (* map_isolated substitutes non-fatal failures *)
      Alcotest.(check (list int))
        "isolated" [ 1; 2; -1; 4; 5; -1 ]
        (Pool.map_isolated pool ~f ~on_error:(fun _ -> -1) [ 1; 2; 3; 4; 5; 6 ]);
      (* a crashing task does not poison the pool for later batches *)
      Alcotest.(check (list int)) "pool still alive" [ 7 ]
        (Pool.map pool ~f:Fun.id [ 7 ]))

let test_map_raises_in_task_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.check_raises "first failure by index, not completion order"
        (Failure "2")
        (fun () ->
          ignore
            (Pool.map pool
               ~f:(fun x -> if x >= 2 then failwith (string_of_int x) else x)
               [ 0; 1; 2; 3; 4 ])))

let test_pool_stats_counts () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let s0 = Pool.stats pool in
      Alcotest.(check int) "fresh pool: nothing submitted" 0 s0.Pool.submitted;
      Alcotest.(check int) "fresh pool: nothing completed" 0 s0.Pool.completed;
      ignore (Pool.map pool ~f:Fun.id (List.init 25 Fun.id));
      ignore
        (Pool.try_map pool
           ~f:(fun x -> if x = 3 then failwith "x" else x)
           (List.init 5 Fun.id));
      let s = Pool.stats pool in
      Alcotest.(check int) "submitted accumulates across batches" 30
        s.Pool.submitted;
      Alcotest.(check int) "raising tasks still count as completed" 30
        s.Pool.completed;
      Alcotest.(check int) "quiescent pool has nothing in flight" 0
        s.Pool.in_flight;
      Alcotest.(check bool) "captured failures do not poison" true
        (s.Pool.poisoned = None))

let test_poisoned_index_reported () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let delivered = ref [] in
      let raised =
        try
          ignore
            (Pool.map_isolated pool
               ~on_result:(fun i _ -> delivered := i :: !delivered)
               ~f:(fun x -> if x = 7 then raise Out_of_memory else x)
               ~on_error:(fun _ -> -1)
               (List.init 20 Fun.id));
          false
        with Out_of_memory -> true
      in
      Alcotest.(check bool) "fatal exhaustion re-raised" true raised;
      Alcotest.(check (list int))
        "sink saw exactly the clean prefix before the fatal index"
        (List.init 7 Fun.id) (List.rev !delivered);
      let s = Pool.stats pool in
      Alcotest.(check (option int)) "poisoned records the fatal task index"
        (Some 7) s.Pool.poisoned)

let test_fatal_exceptions_surface () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.check_raises "Out_of_memory is never bucketed" Out_of_memory
        (fun () ->
          ignore
            (Pool.map_isolated pool
               ~f:(fun x -> if x = 1 then raise Out_of_memory else x)
               ~on_error:(fun _ -> -1)
               [ 0; 1; 2 ])));
  Alcotest.(check bool) "fatality predicate" true
    (Pool.is_fatal Stack_overflow && Pool.is_fatal Out_of_memory
    && not (Pool.is_fatal (Failure "x")))

(* --- domain-safe memoisation --- *)

let test_memo_computes_once () =
  let count = Atomic.make 0 in
  let m =
    Memo.make (fun () ->
        Atomic.incr count;
        42)
  in
  (* concurrent forcing from racing domains: Lazy.force would raise
     CamlinternalLazy.Undefined here *)
  let ds = List.init 4 (fun _ -> Domain.spawn (fun () -> Memo.force m)) in
  let vs = List.map Domain.join ds in
  Alcotest.(check (list int)) "all forcers agree" [ 42; 42; 42; 42 ] vs;
  Alcotest.(check int) "thunk ran once" 1 (Atomic.get count)

let test_memo_poisoning () =
  let count = ref 0 in
  let m =
    Memo.make (fun () ->
        incr count;
        failwith "poison")
  in
  Alcotest.check_raises "first force raises" (Failure "poison") (fun () ->
      ignore (Memo.force m));
  Alcotest.check_raises "second force re-raises cached" (Failure "poison")
    (fun () -> ignore (Memo.force m));
  Alcotest.(check int) "thunk ran once" 1 !count

(* --- per-task seed derivation --- *)

let test_task_seeds () =
  let a = Task_seed.derive ~base:7 ~index:0 in
  Alcotest.(check int) "pure" a (Task_seed.derive ~base:7 ~index:0);
  Alcotest.(check bool) "non-negative" true (a >= 0);
  let seeds = List.init 1000 (fun i -> Task_seed.derive ~base:7 ~index:i) in
  Alcotest.(check int) "indices do not collide" 1000
    (List.length (List.sort_uniq compare seeds));
  Alcotest.(check bool) "base matters" true
    (Task_seed.derive ~base:8 ~index:0 <> a)

(* --- the determinism property on real campaigns --- *)

let campaign_table jobs =
  Campaign.to_table
    (Campaign.run ~jobs ~per_mode:3 ~modes:[ Gen_config.Basic ]
       ~config_ids:[ 1; 12; 19 ] ())

let test_campaign_j_independent () =
  let reference = campaign_table 1 in
  List.iter
    (fun j ->
      Alcotest.(check string)
        (Printf.sprintf "-j %d table = -j 1 table" j)
        reference (campaign_table j))
    [ 2; 4 ]

let test_campaign_rerun_identical () =
  Alcotest.(check string) "same seed, same table" (campaign_table 2)
    (campaign_table 2)

let test_emi_campaign_j_independent () =
  let table jobs =
    Emi_campaign.to_table
      (Emi_campaign.run ~jobs ~bases:2 ~variants:3 ~config_ids:[ 1; 19 ] ())
  in
  let reference = table 1 in
  List.iter
    (fun j ->
      Alcotest.(check string) (Printf.sprintf "-j %d" j) reference (table j))
    [ 2; 4 ]

let test_classify_j_independent () =
  let table jobs = Classify.to_table (Classify.run ~jobs ~per_mode:1 ()) in
  Alcotest.(check string) "-j 2 = -j 1" (table 1) (table 2)

let test_bench_emi_j_independent () =
  let table jobs =
    Bench_emi.to_table (Bench_emi.run ~jobs ~variants:1 ~config_ids:[ 1; 19 ] ())
  in
  Alcotest.(check string) "-j 3 = -j 1" (table 1) (table 3)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order_preserved;
          Alcotest.test_case "reuse + empty" `Quick test_pool_reuse_and_empty;
          Alcotest.test_case "exception isolation" `Quick test_exception_isolation;
          Alcotest.test_case "raise in task order" `Quick test_map_raises_in_task_order;
          Alcotest.test_case "stats counts" `Quick test_pool_stats_counts;
          Alcotest.test_case "poisoned index" `Quick test_poisoned_index_reported;
          Alcotest.test_case "fatal surfaces" `Quick test_fatal_exceptions_surface;
        ] );
      ( "memo",
        [
          Alcotest.test_case "computes once" `Quick test_memo_computes_once;
          Alcotest.test_case "poisoning" `Quick test_memo_poisoning;
        ] );
      ("seeds", [ Alcotest.test_case "derivation" `Quick test_task_seeds ]);
      ( "determinism",
        [
          Alcotest.test_case "table4 -j independent" `Slow test_campaign_j_independent;
          Alcotest.test_case "table4 rerun identical" `Slow test_campaign_rerun_identical;
          Alcotest.test_case "table5 -j independent" `Slow test_emi_campaign_j_independent;
          Alcotest.test_case "table1 -j independent" `Slow test_classify_j_independent;
          Alcotest.test_case "table3 -j independent" `Slow test_bench_emi_j_independent;
        ] );
    ]
