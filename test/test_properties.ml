(* Property-test layer over the kernel pipeline (QCheck over generator
   seeds):

   (a) every generated test case pretty-prints totally and
       deterministically and (re-)typechecks — the printed text is what a
       real campaign would hand to a vendor compiler;
   (b) each optimisation pass in isolation preserves the reference
       interpreter's output on a small NDRange — the guarantee that makes
       an optimising configuration's disagreement a compiler bug, not a
       pipeline bug;
   (c) EMI-pruned variants agree with their parent kernel — the paper's
       core metamorphic invariant (every EMI block is dead by
       construction, so pruning it cannot change the output). *)

let rand () = Random.State.make [| 0x5eed |]

let seed_arb lo hi =
  QCheck.make ~print:(fun s -> "generator seed " ^ string_of_int s)
    QCheck.Gen.(lo -- hi)

(* a small NDRange so a property check costs milliseconds, not seconds *)
let small_cfg mode =
  {
    (Gen_config.scaled mode) with
    Gen_config.min_threads = 4;
    max_threads = 12;
    max_group_linear = 4;
  }

(* generous fuel: transformed kernels may do more work before the budget
   runs out (cf. test_opt) *)
let run_config = { Interp.default_config with Interp.fuel = 3_000_000 }

(* --- (a) pp / typecheck totality and determinism, ~200 kernels/mode --- *)

let pp_roundtrip_test mode =
  QCheck.Test.make ~count:200
    ~name:(Printf.sprintf "pp+retypecheck [%s]" (Gen_config.mode_name mode))
    (seed_arb 100_000 1_000_000)
    (fun seed ->
      let tc, _info = Generate.generate ~cfg:(Gen_config.scaled mode) ~seed () in
      (match Typecheck.check_testcase tc with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "ill-typed at seed %d: %s" seed m);
      let printed = Pp.testcase_to_string tc in
      if String.length printed = 0 then
        QCheck.Test.fail_reportf "empty print at seed %d" seed;
      (* printing is a pure function of the AST *)
      if not (String.equal printed (Pp.testcase_to_string tc)) then
        QCheck.Test.fail_reportf "non-deterministic print at seed %d" seed;
      (* the full prelude form is printable too *)
      String.length (Pp.program_to_string ~with_prelude:true tc.Ast.prog) > 0)

(* --- (b) each pass alone preserves reference semantics --- *)

let passes () =
  [
    ("const_fold", Const_fold.pass ());
    ("simplify", Simplify.pass ());
    ("unroll", Unroll.pass ());
    ("dce", Dce.pass ());
  ]

let pass_preservation_test mode =
  QCheck.Test.make ~count:8
    ~name:(Printf.sprintf "passes preserve semantics [%s]" (Gen_config.mode_name mode))
    (seed_arb 200_000 400_000)
    (fun seed ->
      let tc, info = Generate.generate ~cfg:(small_cfg mode) ~seed () in
      if info.Generate.counter_sharing then true (* discarded, as campaigns do *)
      else begin
        let before = Interp.run_outcome ~config:run_config tc in
        List.iter
          (fun (name, pass) ->
            let prog' = pass.Pass.run tc.Ast.prog in
            (match Typecheck.check_program prog' with
            | Ok () -> ()
            | Error m ->
                QCheck.Test.fail_reportf "[%s seed %d] %s output ill-typed: %s"
                  (Gen_config.mode_name mode) seed name m);
            let after =
              Interp.run_outcome ~config:run_config { tc with Ast.prog = prog' }
            in
            if not (Outcome.equal before after) then
              QCheck.Test.fail_reportf
                "[%s seed %d] pass %s changed semantics:\n%s\nvs\n%s"
                (Gen_config.mode_name mode) seed name
                (Outcome.to_string before) (Outcome.to_string after))
          (passes ());
        true
      end)

(* --- (c) the EMI metamorphic invariant --- *)

let emi_invariant_test =
  QCheck.Test.make ~count:12 ~name:"EMI-pruned variants agree with parent"
    (seed_arb 500_000 700_000)
    (fun seed ->
      let base, info =
        Generate.generate ~emi:true ~cfg:(small_cfg Gen_config.All) ~seed ()
      in
      if info.Generate.counter_sharing then true
      else
        match Interp.run_outcome ~config:run_config base with
        | Outcome.Success expected ->
            List.iteri
              (fun i v ->
                match Interp.run_outcome ~config:run_config v with
                | Outcome.Success got when String.equal got expected -> ()
                | o ->
                    QCheck.Test.fail_reportf
                      "[seed %d] variant %d diverged from parent: %s vs \
                       Success %s"
                      seed i (Outcome.to_string o) expected)
              (Variant.variants ~base ~count:3);
            true
        | _ ->
            (* a base that doesn't compute a value on the reference device
               is not a usable EMI parent; campaigns filter these out *)
            true)

(* variant derivation itself is deterministic in (base, params, seed) *)
let emi_derivation_deterministic_test =
  QCheck.Test.make ~count:12 ~name:"EMI derivation deterministic"
    (seed_arb 500_000 700_000)
    (fun seed ->
      let base, _ =
        Generate.generate ~emi:true ~cfg:(small_cfg Gen_config.All) ~seed ()
      in
      let params = List.hd Prune.paper_combinations in
      let d = Task_seed.derive ~base:seed ~index:0 land 0xFFFF in
      let v1 = Variant.derive ~base ~params ~seed:d in
      let v2 = Variant.derive ~base ~params ~seed:d in
      String.equal
        (Pp.program_to_string v1.Ast.prog)
        (Pp.program_to_string v2.Ast.prog))

let qtest t = QCheck_alcotest.to_alcotest ~rand:(rand ()) t

let () =
  Alcotest.run "properties"
    [
      ("pp-roundtrip", List.map (fun m -> qtest (pp_roundtrip_test m)) Gen_config.all_modes);
      ( "pass-preservation",
        List.map (fun m -> qtest (pass_preservation_test m)) Gen_config.all_modes );
      ( "emi-invariant",
        [ qtest emi_invariant_test; qtest emi_derivation_deterministic_test ] );
    ]
