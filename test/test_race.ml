(* The epoch-based race detector: unit semantics plus end-to-end detection
   on hand-built kernels and the benchmark suite. *)

open Build

let detecting = { Interp.default_config with Interp.detect_races = true }

let races tc = (Interp.run ~config:detecting tc).Interp.races

let k body = kernel1 "k" body
let store e = assign (idx (v "out") tid_linear) (cast Ty.ulong e)

(* --- unit-level detector semantics --- *)

let rec_ t ~loc ~thread ~group ~kind ~atomic ~epoch =
  Race.record t ~loc ~thread ~group ~kind ~atomic ~epoch ~space:Ty.Local

let test_same_epoch_write_write () =
  let t = Race.create () in
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  rec_ t ~loc:1 ~thread:1 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  Alcotest.(check bool) "write/write same epoch races" true (Race.has_race t)

let test_barrier_separates () =
  let t = Race.create () in
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  rec_ t ~loc:1 ~thread:1 ~group:0 ~kind:Race.Read ~atomic:false ~epoch:1;
  Alcotest.(check bool) "different epochs do not race" false (Race.has_race t)

let test_reads_never_race () =
  let t = Race.create () in
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Read ~atomic:false ~epoch:0;
  rec_ t ~loc:1 ~thread:1 ~group:0 ~kind:Race.Read ~atomic:false ~epoch:0;
  Alcotest.(check bool) "read/read fine" false (Race.has_race t)

let test_atomic_writes_safe () =
  let t = Race.create () in
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Write ~atomic:true ~epoch:0;
  rec_ t ~loc:1 ~thread:1 ~group:0 ~kind:Race.Read ~atomic:false ~epoch:0;
  Alcotest.(check bool) "atomic write vs plain read is not flagged" false
    (Race.has_race t);
  rec_ t ~loc:1 ~thread:2 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  Alcotest.(check bool) "plain write vs anything races" true (Race.has_race t)

let test_cross_group () =
  let t = Race.create () in
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  rec_ t ~loc:1 ~thread:9 ~group:1 ~kind:Race.Read ~atomic:false ~epoch:7;
  Alcotest.(check bool) "cross-group epochs are irrelevant" true (Race.has_race t)

let test_same_thread_never () =
  let t = Race.create () in
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  rec_ t ~loc:1 ~thread:0 ~group:0 ~kind:Race.Write ~atomic:false ~epoch:0;
  Alcotest.(check bool) "a thread cannot race itself" false (Race.has_race t)

(* --- end-to-end --- *)

let test_racy_kernel_detected () =
  (* two threads write the same local slot with no barrier *)
  let prog =
    k
      [
        decl ~space:Ty.Local "sh" Ty.uint;
        assign (v "sh") (cast Ty.uint lid_linear);
        barrier;
        store (v "sh");
      ]
  in
  let tc = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog in
  Alcotest.(check bool) "detected" true (races tc <> [])

let test_disjoint_slots_clean () =
  let prog =
    k
      [
        decl ~space:Ty.Local "a" (Ty.Arr (Ty.uint, 2));
        assign (idx (v "a") lid_linear) (cu 1);
        barrier;
        store (idx (v "a") (ci 0));
      ]
  in
  let tc = testcase ~gsize:(2, 1, 1) ~lsize:(2, 1, 1) prog in
  Alcotest.(check (list string)) "clean" []
    (List.map Race.race_to_string (races tc))

let test_generated_kernels_race_free () =
  (* the determinism discipline implies race-freedom; spot-check it
     dynamically over all modes *)
  List.iter
    (fun mode ->
      let cfg = Gen_config.scaled mode in
      for seed = 900 to 906 do
        let tc, info = Generate.generate ~cfg ~seed () in
        if not info.Generate.counter_sharing then
          match races tc with
          | [] -> ()
          | r :: _ ->
              Alcotest.failf "[%s seed %d] %s" (Gen_config.mode_name mode) seed
                (Race.race_to_string r)
      done)
    Gen_config.all_modes

let test_detection_pool_j_independent () =
  (* the racy-schedule path (detect_races on, racy and clean kernels mixed)
     run as pool tasks: reports must not depend on -j *)
  let tcs =
    List.concat_map
      (fun (b : Suite.benchmark) -> [ b.Suite.testcase () ])
      Suite.all
    @ List.filter_map
        (fun seed ->
          let tc, info =
            Generate.generate ~cfg:(Gen_config.scaled Gen_config.Barrier) ~seed ()
          in
          if info.Generate.counter_sharing then None else Some tc)
        [ 910; 911; 912 ]
  in
  let reports jobs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool tcs ~f:(fun tc ->
            List.map Race.race_to_string (races tc)))
  in
  let reference = reports 1 in
  List.iter
    (fun j ->
      List.iteri
        (fun i rs ->
          Alcotest.(check (list string))
            (Printf.sprintf "-j %d kernel %d" j i)
            (List.nth reference i) rs)
        (reports j))
    [ 2; 4 ]

let test_benchmark_races () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let found = races (b.Suite.testcase ()) <> [] in
      Alcotest.(check bool)
        (Printf.sprintf "%s racy=%b" b.Suite.name b.Suite.racy)
        b.Suite.racy found)
    Suite.all

let () =
  Alcotest.run "race"
    [
      ( "detector",
        [
          Alcotest.test_case "same-epoch ww" `Quick test_same_epoch_write_write;
          Alcotest.test_case "barrier separates" `Quick test_barrier_separates;
          Alcotest.test_case "read/read" `Quick test_reads_never_race;
          Alcotest.test_case "atomics" `Quick test_atomic_writes_safe;
          Alcotest.test_case "cross-group" `Quick test_cross_group;
          Alcotest.test_case "same thread" `Quick test_same_thread_never;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "racy kernel" `Quick test_racy_kernel_detected;
          Alcotest.test_case "disjoint slots" `Quick test_disjoint_slots_clean;
          Alcotest.test_case "generated kernels race-free" `Slow
            test_generated_kernels_race_free;
          Alcotest.test_case "spmv/myocyte rediscovered" `Quick test_benchmark_races;
          Alcotest.test_case "detection -j independent under pool" `Slow
            test_detection_pool_j_independent;
        ] );
    ]
