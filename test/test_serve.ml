(* The serve subsystem: HTTP codec edge cases, the admission policy under
   synthetic clocks, journal-backed store replay (including a torn tail),
   router responses, and a live daemon over a unix socket — concurrent
   clients, restart byte-identity, and overload shedding. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- HTTP codec ------------------------------------------------------- *)

let test_http_torn_request () =
  let d = Http.decoder () in
  let raw = "POST /kernel HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello" in
  (* one byte at a time: the decoder must hold `Awaiting until the final
     body byte lands, then produce exactly one request *)
  String.iteri
    (fun i c ->
      if i < String.length raw - 1 then begin
        Http.feed_string d (String.make 1 c);
        match Http.next d with
        | `Awaiting -> ()
        | `Req _ -> Alcotest.failf "complete request after %d/%d bytes" (i + 1)
                      (String.length raw)
        | `Error (s, m) -> Alcotest.failf "error %d (%s) on torn request" s m
      end)
    raw;
  Http.feed_string d (String.make 1 raw.[String.length raw - 1]);
  (match Http.next d with
  | `Req r ->
      Alcotest.(check string) "method" "POST" r.Http.meth;
      Alcotest.(check string) "path" "/kernel" r.Http.path;
      Alcotest.(check string) "body" "hello" r.Http.body
  | _ -> Alcotest.fail "no request after final byte");
  Alcotest.(check int) "buffer drained" 0 (Http.buffered d)

let test_http_pipelined () =
  let d = Http.decoder () in
  Http.feed_string d
    "GET /healthz HTTP/1.1\r\n\r\nPOST /claim HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
  (match Http.next d with
  | `Req r -> Alcotest.(check string) "first path" "/healthz" r.Http.path
  | _ -> Alcotest.fail "first pipelined request missing");
  (match Http.next d with
  | `Req r ->
      Alcotest.(check string) "second path" "/claim" r.Http.path;
      Alcotest.(check string) "second body" "{}" r.Http.body
  | _ -> Alcotest.fail "second pipelined request missing");
  match Http.next d with
  | `Awaiting -> ()
  | _ -> Alcotest.fail "phantom third request"

let test_http_bare_lf () =
  let d = Http.decoder () in
  Http.feed_string d "GET /bugs HTTP/1.1\nHost: x\n\n";
  match Http.next d with
  | `Req r ->
      Alcotest.(check string) "path" "/bugs" r.Http.path;
      Alcotest.(check (option string)) "header lowercased" (Some "x")
        (List.assoc_opt "host" r.Http.headers)
  | _ -> Alcotest.fail "bare-LF request rejected"

let test_http_oversized_body () =
  let d = Http.decoder () in
  Http.feed_string d
    (Printf.sprintf "POST /kernel HTTP/1.1\r\nContent-Length: %d\r\n\r\n"
       (Http.max_body + 1));
  (match Http.next d with
  | `Error (413, _) -> ()
  | `Error (s, _) -> Alcotest.failf "expected 413, got %d" s
  | _ -> Alcotest.fail "oversized body accepted");
  (* the error is sticky: feeding more bytes cannot resynchronise *)
  Http.feed_string d "GET / HTTP/1.1\r\n\r\n";
  match Http.next d with
  | `Error (413, _) -> ()
  | _ -> Alcotest.fail "413 was not sticky"

let test_http_bad_request_line () =
  let d = Http.decoder () in
  Http.feed_string d "what is this\r\n\r\n";
  (match Http.next d with
  | `Error (400, _) -> ()
  | _ -> Alcotest.fail "garbage request line accepted");
  let d = Http.decoder () in
  Http.feed_string d "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  match Http.next d with
  | `Error (501, _) -> ()
  | _ -> Alcotest.fail "transfer-encoding not refused"

let test_http_oversized_head () =
  let d = Http.decoder () in
  Http.feed_string d "GET / HTTP/1.1\r\n";
  Http.feed_string d ("X-Pad: " ^ String.make (Http.max_head + 10) 'a');
  match Http.next d with
  | `Error (431, _) -> ()
  | _ -> Alcotest.fail "unbounded header block accepted"

let test_http_response () =
  let r = Http.response ~status:200 ~body:"ok" () in
  Alcotest.(check bool) "status line" true (starts_with "HTTP/1.1 200 OK\r\n" r);
  Alcotest.(check bool) "content-length" true (contains r "content-length: 2");
  let nc = Http.response ~status:204 ~body:"" () in
  Alcotest.(check bool) "204 has no content-length" false
    (contains nc "content-length");
  let shed =
    Http.response ~status:429 ~headers:[ ("retry-after", "1") ] ~body:"busy" ()
  in
  Alcotest.(check bool) "extra header rides along" true
    (contains shed "retry-after: 1")

(* --- admission policy ------------------------------------------------- *)

let ms n = Int64.mul (Int64.of_int n) 1_000_000L

let test_admission_verdicts () =
  let a =
    Admission.create ~max_inflight:2 ~max_queue:2 ~read_timeout_ms:1_000
      ~queue_timeout_ms:200 ()
  in
  let v id now = Admission.on_open a ~id ~now in
  Alcotest.(check bool) "first admitted" true (v 1 (ms 0) = Admission.Admit);
  Alcotest.(check bool) "second admitted" true (v 2 (ms 1) = Admission.Admit);
  Alcotest.(check bool) "third parked" true (v 3 (ms 2) = Admission.Park);
  Alcotest.(check bool) "fourth parked" true (v 4 (ms 3) = Admission.Park);
  Alcotest.(check bool) "fifth shed" true (v 5 (ms 4) = Admission.Shed);
  Alcotest.(check int) "two in flight" 2 (Admission.inflight a);
  Alcotest.(check int) "two parked" 2 (Admission.parked a);
  (* a freed slot goes to the oldest parked connection *)
  Admission.on_close a ~id:1;
  Alcotest.(check (list int)) "FIFO promotion" [ 3 ]
    (Admission.promote a ~now:(ms 10));
  Alcotest.(check (list int)) "no free slot, no promotion" []
    (Admission.promote a ~now:(ms 11));
  (* the remaining parked connection times out of the pen *)
  Alcotest.(check (list int)) "not expired yet" []
    (Admission.expire a ~now:(ms 100));
  Alcotest.(check (list int)) "queue timeout" [ 4 ]
    (Admission.expire a ~now:(ms 300));
  Alcotest.(check int) "pen empty" 0 (Admission.parked a)

let test_admission_stale () =
  let a = Admission.create ~max_inflight:4 ~read_timeout_ms:1_000 () in
  ignore (Admission.on_open a ~id:7 ~now:(ms 0));
  ignore (Admission.on_open a ~id:8 ~now:(ms 0));
  Alcotest.(check (list int)) "fresh connections not stale" []
    (Admission.stale a ~now:(ms 500));
  Admission.touch a ~id:8 ~now:(ms 900);
  Alcotest.(check (list int)) "only the untouched one goes stale" [ 7 ]
    (Admission.stale a ~now:(ms 1_500));
  Admission.on_close a ~id:7;
  Alcotest.(check (list int)) "touch reset the clock" []
    (Admission.stale a ~now:(ms 1_800));
  Alcotest.(check (list int)) "everything ages out eventually" [ 8 ]
    (Admission.stale a ~now:(ms 3_000))

(* --- store fixtures --------------------------------------------------- *)

let kernel_text i =
  Printf.sprintf "__kernel void entry(__global int *a) { a[0] = %d; }\n" i

let entry_of i =
  let text = kernel_text i in
  ( {
      Corpus.hash = Corpus.hash_text text;
      seed = i;
      mode = "basic";
      cls = "candidate";
      config = 0;
      opt = "-";
    },
    text )

let cell_of ~seed ~config ~opt =
  {
    Journal.index = 0;
    seed;
    mode = "basic";
    config;
    opt;
    outcomes = [ Outcome.Crash "segfault" ];
    note = "";
  }

let obs_of ~seed ~config ~opt ~hash =
  {
    Triage.o_cls = "crash";
    o_config = config;
    o_opt = opt;
    o_signature = "sig-atomic";
    o_seed = seed;
    o_mode = "basic";
    o_hash = hash;
  }

let query_fingerprint store =
  String.concat "\n"
    (List.map
       (fun path ->
         Router.handle store
           { Http.meth = "GET"; path; headers = []; body = "" })
       [ "/bugs"; "/coverage"; "/corpus"; "/coverage/hex" ])

let populate store =
  List.iter
    (fun i ->
      let e, text = entry_of i in
      match Svstore.submit_kernel store e text with
      | Ok true -> ()
      | Ok false -> Alcotest.failf "kernel %d unexpectedly duplicate" i
      | Error m -> Alcotest.fail m)
    [ 1; 2; 3 ];
  List.iter
    (fun (seed, config, opt, cov) ->
      let e, _ = entry_of seed in
      match
        Svstore.report_observation store
          ~cell:(cell_of ~seed ~config ~opt)
          ~obs:(Some (obs_of ~seed ~config ~opt ~hash:e.Corpus.hash))
          ~cov
      with
      | Ok (true, _) -> ()
      | Ok (false, _) -> Alcotest.fail "observation unexpectedly duplicate"
      | Error m -> Alcotest.fail m)
    [ (1, 2, "-", [ 10; 20 ]); (1, 2, "+", [ 10; 30 ]); (2, 5, "-", [ 40 ]) ]

(* --- svstore ---------------------------------------------------------- *)

let with_store f =
  let path = Filename.temp_file "svstore" ".journal" in
  Sys.remove path;
  (match Svstore.open_ ~path with
  | Error m -> Alcotest.fail m
  | Ok store -> f path store);
  if Sys.file_exists path then Sys.remove path

let test_svstore_dedup () =
  with_store (fun _ store ->
      populate store;
      let e, text = entry_of 1 in
      Alcotest.(check (result bool string)) "duplicate submit is idempotent"
        (Ok false)
        (Svstore.submit_kernel store e text);
      Alcotest.(check bool) "hash mismatch refused" true
        (Result.is_error (Svstore.submit_kernel store e (kernel_text 99)));
      (match
         Svstore.report_observation store
           ~cell:(cell_of ~seed:1 ~config:2 ~opt:"-")
           ~obs:None ~cov:[ 10 ]
       with
      | Ok (false, 0) -> ()
      | Ok _ -> Alcotest.fail "duplicate cell not deduplicated"
      | Error m -> Alcotest.fail m);
      Alcotest.(check bool) "out-of-range coverage refused" true
        (Result.is_error
           (Svstore.report_observation store
              ~cell:(cell_of ~seed:9 ~config:1 ~opt:"-")
              ~obs:None ~cov:[ 65536 ]));
      Alcotest.(check int) "kernels" 3 (Svstore.kernel_count store);
      Alcotest.(check int) "cells" 3 (Svstore.cell_count store);
      Alcotest.(check int) "coverage bits" 4 (Svstore.coverage_count store);
      (* the triage key is (class, config, opt, signature): all three
         observations land in distinct buckets *)
      Alcotest.(check int) "distinct bugs" 3
        (List.length (Svstore.buckets store));
      Svstore.close store)

let test_svstore_claim_cursor () =
  with_store (fun path store ->
      populate store;
      (match Svstore.claim store with
      | Some (e, text) ->
          Alcotest.(check string) "claims run in submission order"
            (fst (entry_of 1)).Corpus.hash e.Corpus.hash;
          Alcotest.(check string) "text rides along" (kernel_text 1) text
      | None -> Alcotest.fail "claim on non-empty corpus");
      ignore (Svstore.claim store);
      Alcotest.(check int) "cursor advanced" 2 (Svstore.cursor store);
      Svstore.close store;
      (* the cursor is journalled: a restarted daemon never re-issues work *)
      match Svstore.open_ ~path with
      | Error m -> Alcotest.fail m
      | Ok store2 ->
          Alcotest.(check int) "cursor survives restart" 2
            (Svstore.cursor store2);
          (match Svstore.claim store2 with
          | Some (e, _) ->
              Alcotest.(check string) "next unclaimed kernel"
                (fst (entry_of 3)).Corpus.hash e.Corpus.hash
          | None -> Alcotest.fail "third kernel lost");
          Alcotest.(check bool) "corpus exhausts" true
            (Svstore.claim store2 = None);
          Svstore.close store2)

let test_svstore_replay_identical () =
  with_store (fun path store ->
      populate store;
      let before = query_fingerprint store in
      Svstore.close store;
      match Svstore.open_ ~path with
      | Error m -> Alcotest.fail m
      | Ok store2 ->
          Alcotest.(check string) "every query byte-identical after replay"
            before (query_fingerprint store2);
          Svstore.close store2)

let test_svstore_torn_tail () =
  with_store (fun path store ->
      populate store;
      let before = query_fingerprint store in
      Svstore.close store;
      (* a kill mid-append leaves half a record on the final line *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"k\":\"obs\",\"cell\":{\"seed\":9";
      close_out oc;
      (match Svstore.open_ ~path with
      | Error m -> Alcotest.failf "torn tail not recovered: %s" m
      | Ok store2 ->
          Alcotest.(check string) "torn line dropped, state intact" before
            (query_fingerprint store2);
          Svstore.close store2);
      (* the rewrite left a clean journal: a second replay sees no damage *)
      match Svstore.open_ ~path with
      | Error m -> Alcotest.failf "rewritten journal rejected: %s" m
      | Ok store3 ->
          Alcotest.(check string) "clean prefix stable" before
            (query_fingerprint store3);
          Svstore.close store3)

(* --- router ----------------------------------------------------------- *)

let test_router_endpoints () =
  with_store (fun _ store ->
      populate store;
      let get path =
        Router.handle store { Http.meth = "GET"; path; headers = []; body = "" }
      in
      Alcotest.(check bool) "healthz" true
        (starts_with "HTTP/1.1 200" (get "/healthz")
        && contains (get "/healthz") "\"kernels\":3");
      Alcotest.(check bool) "bugs carries the trigger signature" true
        (contains (get "/bugs") "sig-atomic");
      Alcotest.(check bool) "coverage" true
        (contains (get "/coverage") "\"bits\":4");
      let e, text = entry_of 2 in
      Alcotest.(check bool) "kernel text served by hash" true
        (contains (get ("/corpus/" ^ e.Corpus.hash)) text);
      Alcotest.(check bool) "unknown hash 404" true
        (starts_with "HTTP/1.1 404" (get "/corpus/feedfacefeedface"));
      Alcotest.(check bool) "unknown path 404" true
        (starts_with "HTTP/1.1 404" (get "/nope"));
      Alcotest.(check bool) "metrics prometheus text" true
        (starts_with "HTTP/1.1 200" (get "/metrics"));
      Alcotest.(check bool) "report is html" true
        (contains (get "/report") "<html");
      let r =
        Router.handle store
          { Http.meth = "POST"; path = "/bugs"; headers = []; body = "" }
      in
      Alcotest.(check bool) "query endpoints refuse POST" true
        (starts_with "HTTP/1.1 405" r);
      let bad =
        Router.handle store
          { Http.meth = "POST"; path = "/kernel"; headers = []; body = "{oops" }
      in
      Alcotest.(check bool) "malformed submit 400" true
        (starts_with "HTTP/1.1 400" bad);
      Svstore.close store)

(* --- the live daemon -------------------------------------------------- *)

let temp_addr () =
  let sock = Filename.temp_file "test_serve" ".sock" in
  Sys.remove sock;
  Netaddr.Unix_sock sock

let start_daemon ?(max_inflight = 16) ?(max_queue = 16) ?(queue_timeout_ms = 200)
    ?history ~path addr =
  match Svstore.open_ ~path with
  | Error m -> Alcotest.fail m
  | Ok store ->
      let stop = Atomic.make false in
      let d =
        Domain.spawn (fun () ->
            Server.run ~addr ~store ~max_inflight ~max_queue ~queue_timeout_ms
              ~stop ?history ())
      in
      (match Sclient.get ~addr ~retries:40 "/healthz" with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "daemon did not come up: %s" m);
      (store, stop, d)

let stop_daemon (store, stop, d) =
  Atomic.set stop true;
  (match Domain.join d with
  | Ok (_ : Server.stats) -> ()
  | Error m -> Alcotest.failf "daemon failed: %s" m);
  Svstore.close store

let fetch addr path =
  match Sclient.get ~addr path with
  | Ok r -> (r.Sclient.status, r.Sclient.body)
  | Error m -> Alcotest.failf "GET %s: %s" path m

let test_server_concurrent_clients () =
  let addr = temp_addr () in
  let path = Filename.temp_file "test_serve" ".journal" in
  Sys.remove path;
  let daemon = start_daemon ~path addr in
  (* two client domains race disjoint and overlapping submissions; the
     server-side dedup must make the overlap idempotent *)
  let client lo =
    Domain.spawn (fun () ->
        List.init 4 (fun i ->
            let e, text = entry_of (lo + i) in
            match Sclient.submit_kernel ~addr e text with
            | Ok fresh -> if fresh then 1 else 0
            | Error m -> Alcotest.failf "submit: %s" m)
        |> List.fold_left ( + ) 0)
  in
  let a = client 1 and b = client 3 in
  let fresh = Domain.join a + Domain.join b in
  (* seeds 1..4 and 3..6 overlap on 3,4: exactly 6 distinct kernels *)
  Alcotest.(check int) "dedup across concurrent clients" 6 fresh;
  let status, body = fetch addr "/healthz" in
  Alcotest.(check int) "healthz 200" 200 status;
  Alcotest.(check bool) "six kernels stored" true (contains body "\"kernels\":6");
  (* claims from two clients never hand out the same kernel twice *)
  let claimer () =
    Domain.spawn (fun () ->
        let rec go acc =
          match Sclient.claim ~addr () with
          | Ok (Some (e, _)) -> go (e.Corpus.hash :: acc)
          | Ok None -> acc
          | Error m -> Alcotest.failf "claim: %s" m
        in
        go [])
  in
  let c1 = claimer () and c2 = claimer () in
  let claimed = Domain.join c1 @ Domain.join c2 in
  Alcotest.(check int) "every kernel claimed exactly once" 6
    (List.length (List.sort_uniq String.compare claimed));
  Alcotest.(check int) "no double issue" 6 (List.length claimed);
  stop_daemon daemon;
  Sys.remove path

let test_server_restart_identical () =
  let addr = temp_addr () in
  let path = Filename.temp_file "test_serve" ".journal" in
  Sys.remove path;
  let daemon = start_daemon ~path addr in
  List.iter
    (fun i ->
      let e, text = entry_of i in
      (match Sclient.submit_kernel ~addr e text with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      match
        Sclient.report_observation ~addr
          ~cell:(cell_of ~seed:i ~config:2 ~opt:"-")
          ~obs:(Some (obs_of ~seed:i ~config:2 ~opt:"-" ~hash:e.Corpus.hash))
          ~cov:[ i; i + 100 ] ()
      with
      | Ok (true, 2) -> ()
      | Ok _ -> Alcotest.fail "observation not fresh"
      | Error m -> Alcotest.fail m)
    [ 1; 2; 3 ];
  let paths = [ "/bugs"; "/coverage"; "/corpus"; "/coverage/hex" ] in
  let before = List.map (fetch addr) paths in
  stop_daemon daemon;
  (* same journal, fresh process: every query answer must be byte-identical *)
  let daemon2 = start_daemon ~path addr in
  let after = List.map (fetch addr) paths in
  List.iter2
    (fun p ((s0, b0), (s1, b1)) ->
      Alcotest.(check int) (p ^ " status") s0 s1;
      Alcotest.(check string) (p ^ " byte-identical after restart") b0 b1)
    paths (List.combine before after);
  stop_daemon daemon2;
  Sys.remove path

let test_server_overload_sheds () =
  let addr = temp_addr () in
  let path = Filename.temp_file "test_serve" ".journal" in
  Sys.remove path;
  let daemon = start_daemon ~max_inflight:1 ~max_queue:1 ~queue_timeout_ms:200
      ~path addr
  in
  (* five idle connections against one admitted slot and one pen seat:
     three are shed on arrival, the parked one on queue timeout *)
  let socks =
    List.filter_map
      (fun _ -> Result.to_option (Netaddr.connect addr))
      (List.init 5 (fun i -> i))
  in
  Alcotest.(check int) "all connections accepted at socket level" 5
    (List.length socks);
  let shed = ref 0 and retry_after = ref 0 in
  List.iter
    (fun fd ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
      let buf = Bytes.create 4096 in
      (match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
          let reply = Bytes.sub_string buf 0 n in
          if contains reply "429" then incr shed;
          if contains reply "retry-after:" then incr retry_after
      | exception Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    socks;
  Alcotest.(check int) "four of five shed with 429" 4 !shed;
  Alcotest.(check int) "every refusal names a retry delay" 4 !retry_after;
  (* the daemon is still healthy after shedding *)
  let status, _ = fetch addr "/healthz" in
  Alcotest.(check int) "daemon alive after overload" 200 status;
  stop_daemon daemon;
  Sys.remove path

(* the metrics time series and per-route request accounting: a daemon
   armed with a history ring serves its own snapshots at
   /metrics/history, and every handled request lands under its route
   label in /metrics.json *)
let test_server_metrics_history () =
  let addr = temp_addr () in
  let path = Filename.temp_file "test_serve" ".journal" in
  Sys.remove path;
  Metrics.reset ();
  let daemon = start_daemon ~history:(Svhistory.create ()) ~path addr in
  List.iter (fun _ -> ignore (fetch addr "/healthz")) [ 1; 2; 3 ];
  let status, body = fetch addr "/metrics/history" in
  Alcotest.(check int) "history 200" 200 status;
  (match Jsonl.of_string body with
  | Error e -> Alcotest.failf "history is not JSON: %s" e
  | Ok j -> (
      (match Option.bind (Jsonl.member "count" j) Jsonl.get_int with
      | Some n -> Alcotest.(check bool) "at least one snapshot" true (n >= 1)
      | None -> Alcotest.fail "history lacks a count");
      match Jsonl.member "samples" j with
      | Some (Jsonl.List (s :: _)) ->
          List.iter
            (fun k ->
              if Jsonl.member k s = None then
                Alcotest.failf "sample lacks %S" k)
            [ "t_ms"; "requests"; "shed"; "timeouts"; "p50_us"; "p99_us" ]
      | _ -> Alcotest.fail "history lacks samples"));
  let status, body = fetch addr "/metrics.json" in
  Alcotest.(check int) "metrics.json 200" 200 status;
  Alcotest.(check bool) "requests counted under their route label" true
    (contains body "serve.requests.healthz");
  Alcotest.(check bool) "latency histogram per route" true
    (contains body "serve.request_us.healthz");
  (* the Prometheus exposition carries the same per-route counters *)
  let status, prom = fetch addr "/metrics" in
  Alcotest.(check int) "prometheus 200" 200 status;
  Alcotest.(check bool) "per-route counter in exposition" true
    (contains prom "serve_requests_healthz");
  (* an unarmed daemon answers 404, not an empty series *)
  stop_daemon daemon;
  let daemon2 = start_daemon ~path addr in
  let status, _ = fetch addr "/metrics/history" in
  Alcotest.(check int) "history 404 when not armed" 404 status;
  stop_daemon daemon2;
  Sys.remove path

let () =
  Alcotest.run "serve"
    [
      ( "http",
        [
          Alcotest.test_case "torn request, byte by byte" `Quick
            test_http_torn_request;
          Alcotest.test_case "pipelined requests" `Quick test_http_pipelined;
          Alcotest.test_case "bare-LF endings" `Quick test_http_bare_lf;
          Alcotest.test_case "oversized body 413, sticky" `Quick
            test_http_oversized_body;
          Alcotest.test_case "bad request line / 501" `Quick
            test_http_bad_request_line;
          Alcotest.test_case "oversized head 431" `Quick
            test_http_oversized_head;
          Alcotest.test_case "response serialisation" `Quick test_http_response;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admit/park/shed + FIFO promote" `Quick
            test_admission_verdicts;
          Alcotest.test_case "slow-loris goes stale" `Quick test_admission_stale;
        ] );
      ( "svstore",
        [
          Alcotest.test_case "dedup and refusals" `Quick test_svstore_dedup;
          Alcotest.test_case "claim cursor survives restart" `Quick
            test_svstore_claim_cursor;
          Alcotest.test_case "replay byte-identical" `Quick
            test_svstore_replay_identical;
          Alcotest.test_case "torn tail recovered" `Quick test_svstore_torn_tail;
        ] );
      ( "router",
        [ Alcotest.test_case "endpoint contract" `Quick test_router_endpoints ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent clients, idempotent writes" `Slow
            test_server_concurrent_clients;
          Alcotest.test_case "restart answers byte-identical" `Slow
            test_server_restart_identical;
          Alcotest.test_case "overload sheds 429" `Slow
            test_server_overload_sheds;
          Alcotest.test_case "metrics history + per-route accounting" `Slow
            test_server_metrics_history;
        ] );
    ]
