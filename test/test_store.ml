(* The persistence layer: the JSONL codec, the crash-safe journal (torn
   tails recovered, deeper damage rejected, resume validated against the
   header identity), the content-addressed corpus, and the subsystem's
   headline property — a campaign resumed from any journal prefix, at any
   -j, finishes byte-identical (table and journal file) to an
   uninterrupted run. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let append_file path s =
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc s;
  close_out oc

let temp suffix = Filename.temp_file "store_test" suffix

(* --- jsonl codec --- *)

let test_jsonl_roundtrip () =
  let values =
    [
      Jsonl.Null;
      Jsonl.Bool true;
      Jsonl.Int (-42);
      Jsonl.Int max_int;
      Jsonl.Str "";
      Jsonl.Str "plain";
      Jsonl.Str "quotes \" and \\ and \t\n control \x01 and bytes \xff\x80";
      Jsonl.List [ Jsonl.Int 1; Jsonl.Str "two"; Jsonl.Null ];
      Jsonl.Obj
        [ ("a", Jsonl.Int 1); ("b", Jsonl.List []); ("c", Jsonl.Obj []) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Jsonl.to_string v in
      match Jsonl.of_string s with
      | Ok v' ->
          Alcotest.(check string) ("round-trip of " ^ s) s (Jsonl.to_string v')
      | Error e -> Alcotest.failf "could not re-parse %s: %s" s e)
    values

let test_jsonl_rejects () =
  List.iter
    (fun s ->
      match Jsonl.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "{} trailing"; "1.5"; "nul"; "\"unterminated"; "{\"a\":}" ]

let test_jsonl_checksum () =
  let fields = [ ("k", Jsonl.Str "cell"); ("i", Jsonl.Int 7) ] in
  let line = Jsonl.encode_line fields in
  (match Jsonl.decode_line line with
  | Ok fs -> Alcotest.(check string) "checksum strips" (Jsonl.to_string (Jsonl.Obj fields)) (Jsonl.to_string (Jsonl.Obj fs))
  | Error e -> Alcotest.fail e);
  (* flipping any payload byte must invalidate the line *)
  let corrupt = String.mapi (fun i c -> if i = 10 then 'X' else c) line in
  match Jsonl.decode_line corrupt with
  | Ok _ -> Alcotest.fail "accepted a corrupted line"
  | Error _ -> ()

(* --- journal --- *)

let header () =
  Journal.make_header ~campaign:"table4"
    ~ident:[ ("seed0", "10000"); ("fuel", "-") ]
    ~scale:[ ("per_mode", "2") ]

let cells () =
  let open Outcome in
  [
    {
      Journal.index = 0; seed = 10000; mode = "BASIC"; config = 1; opt = "-";
      outcomes = [ Success "out: 1,2,3" ]; note = "";
    };
    {
      Journal.index = 1; seed = 10000; mode = "BASIC"; config = 1; opt = "+";
      outcomes = [ Build_failure "diag \"quoted\"\nline2" ]; note = "";
    };
    {
      Journal.index = 2; seed = 10001; mode = "ALL"; config = 12; opt = "*";
      outcomes = [ Crash "sig"; Timeout ]; note = "";
    };
    {
      Journal.index = 3; seed = 0; mode = "lud"; config = 19; opt = "*";
      outcomes = [ Machine_crash "hang"; Ub "race" ]; note = "w?";
    };
  ]

let write_journal path h cs =
  let w = Journal.create ~path h in
  List.iter (Journal.write_cell w) cs;
  Journal.commit w

let check_load ~msg path expect_cells expect_trunc =
  match Journal.load ~path with
  | Error e -> Alcotest.failf "%s: %s" msg (Journal.error_to_string e)
  | Ok (h, cs, trunc) ->
      Alcotest.(check bool) (msg ^ ": campaign") true (h.Journal.campaign = "table4");
      Alcotest.(check bool) (msg ^ ": truncated flag") expect_trunc trunc;
      Alcotest.(check int) (msg ^ ": cell count") (List.length expect_cells)
        (List.length cs);
      List.iter2
        (fun (a : Journal.cell) (b : Journal.cell) ->
          Alcotest.(check bool) (msg ^ ": cell") true
            (a.Journal.index = b.Journal.index
            && Journal.key a = Journal.key b
            && a.Journal.note = b.Journal.note
            && List.for_all2 Outcome.equal a.Journal.outcomes b.Journal.outcomes))
        expect_cells cs

let test_journal_roundtrip () =
  let path = temp ".jsonl" in
  write_journal path (header ()) (cells ());
  check_load ~msg:"round-trip" path (cells ()) false;
  Sys.remove path

let test_journal_torn_tail () =
  let path = temp ".jsonl" in
  write_journal path (header ()) (cells ());
  (* a kill -9 mid-append leaves a partial final line *)
  append_file path "{\"k\":\"cell\",\"i\":4,\"se";
  check_load ~msg:"torn tail" path (cells ()) true;
  (* resume recovers the clean prefix too *)
  (match Journal.resume ~path (header ()) with
  | Error e -> Alcotest.fail (Journal.error_to_string e)
  | Ok (w, cs) ->
      Alcotest.(check int) "resume sees clean prefix" 4 (List.length cs);
      Journal.commit w);
  Sys.remove path

let test_journal_corrupt_middle () =
  let path = temp ".jsonl" in
  write_journal path (header ()) (cells ());
  let lines = String.split_on_char '\n' (read_file path) in
  (* damage the second record: now the bad line is not the final one *)
  let mangled =
    List.mapi (fun i l -> if i = 2 then "{\"k\":\"cell\",broken" else l) lines
  in
  let oc = open_out_bin path in
  output_string oc (String.concat "\n" mangled);
  close_out oc;
  (match Journal.load ~path with
  | Error (Journal.Corrupt _) -> ()
  | Error e -> Alcotest.failf "expected Corrupt, got %s" (Journal.error_to_string e)
  | Ok _ -> Alcotest.fail "loaded a journal with mid-file damage");
  Sys.remove path

let test_journal_header_mismatch () =
  let path = temp ".jsonl" in
  write_journal path (header ()) (cells ());
  let other =
    Journal.make_header ~campaign:"table4"
      ~ident:[ ("seed0", "99"); ("fuel", "-") ]
      ~scale:[ ("per_mode", "2") ]
  in
  (match Journal.resume ~path other with
  | Error (Journal.Mismatch _) -> ()
  | Error e -> Alcotest.failf "expected Mismatch, got %s" (Journal.error_to_string e)
  | Ok _ -> Alcotest.fail "resumed under a different identity");
  (* a different campaign is also an identity change *)
  (match
     Journal.resume ~path
       (Journal.make_header ~campaign:"table1"
          ~ident:[ ("seed0", "10000"); ("fuel", "-") ]
          ~scale:[])
   with
  | Error (Journal.Mismatch _) -> ()
  | _ -> Alcotest.fail "resumed under a different campaign");
  (* scale may differ: that is the grow-the-campaign workflow *)
  (match
     Journal.resume ~path
       (Journal.make_header ~campaign:"table4"
          ~ident:[ ("seed0", "10000"); ("fuel", "-") ]
          ~scale:[ ("per_mode", "50") ])
   with
  | Ok (w, cs) ->
      Alcotest.(check int) "cells replayed across scales" 4 (List.length cs);
      Journal.commit w
  | Error e -> Alcotest.fail (Journal.error_to_string e));
  Sys.remove path

let test_journal_missing_file () =
  let path = temp ".jsonl" in
  Sys.remove path;
  match Journal.resume ~path (header ()) with
  | Ok (w, cs) ->
      Alcotest.(check int) "missing journal = fresh start" 0 (List.length cs);
      List.iter (Journal.write_cell w) (cells ());
      Journal.commit w;
      check_load ~msg:"created by resume" path (cells ()) false;
      Sys.remove path
  | Error e -> Alcotest.fail (Journal.error_to_string e)

(* --- corpus --- *)

let test_corpus () =
  let dir = Filename.temp_file "store_corpus" "" in
  Sys.remove dir;
  let text = "__kernel void entry() { }\n" in
  let h = Corpus.hash_text text in
  let entry cls config =
    { Corpus.hash = h; seed = 3; mode = "BASIC"; cls; config; opt = "-" }
  in
  (match Corpus.add_all ~dir [ (entry "crash" 1, text); (entry "crash" 2, text) ] with
  | Ok n -> Alcotest.(check int) "two fresh entries" 2 n
  | Error e -> Alcotest.fail e);
  (* same kernel, same provenance: deduplicated end to end *)
  (match Corpus.add_all ~dir [ (entry "crash" 1, text) ] with
  | Ok n -> Alcotest.(check int) "duplicate adds nothing" 0 n
  | Error e -> Alcotest.fail e);
  (* same kernel, new classification: one more index line, same file *)
  (match Corpus.add_all ~dir [ (entry "wrong-code" 1, text) ] with
  | Ok n -> Alcotest.(check int) "new class indexes again" 1 n
  | Error e -> Alcotest.fail e);
  (match Corpus.index ~dir with
  | Ok es ->
      Alcotest.(check int) "index lines" 3 (List.length es);
      List.iter
        (fun e ->
          match Corpus.verify ~dir e with
          | Ok () -> ()
          | Error m -> Alcotest.fail m)
        es
  | Error e -> Alcotest.fail e);
  (match Corpus.read_kernel ~dir ~hash:h with
  | Ok t -> Alcotest.(check string) "kernel text intact" text t
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one kernel file + index" 2
    (Array.length (Sys.readdir dir))

let test_corpus_fold () =
  let dir = Filename.temp_file "store_corpus_fold" "" in
  Sys.remove dir;
  (* load_all on a corpus that does not exist yet reads as empty *)
  (match Corpus.load_all ~dir with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing corpus should be empty"
  | Error e -> Alcotest.fail e);
  let text_a = "__kernel void entry() { }\n"
  and text_b = "__kernel void entry() { int x = 0; }\n" in
  let entry text cls config =
    { Corpus.hash = Corpus.hash_text text; seed = 1; mode = "ALL"; cls; config; opt = "+" }
  in
  let pairs =
    [
      (entry text_a "crash" 1, text_a);
      (entry text_a "crash" 2, text_a);
      (entry text_b "seed" 0, text_b);
    ]
  in
  (match Corpus.add_all ~dir pairs with
  | Ok n -> Alcotest.(check int) "three entries" 3 n
  | Error e -> Alcotest.fail e);
  (* fold sees every entry with its text, in index order *)
  (match
     Corpus.fold ~dir ~init:[] ~f:(fun acc e text -> (e.Corpus.cls, text) :: acc)
   with
  | Ok acc ->
      Alcotest.(check (list (pair string string)))
        "fold visits index order with texts"
        [ ("crash", text_a); ("crash", text_a); ("seed", text_b) ]
        (List.rev acc)
  | Error e -> Alcotest.fail e);
  (* load_all is the collecting specialisation of fold *)
  (match Corpus.load_all ~dir with
  | Ok loaded ->
      Alcotest.(check int) "load_all count" 3 (List.length loaded);
      List.iter2
        (fun (e, text) (e', text') ->
          Alcotest.(check bool) "entry matches" true (e = e');
          Alcotest.(check string) "text matches" text text')
        pairs loaded
  | Error e -> Alcotest.fail e);
  (* a missing kernel file surfaces as an error, not an exception *)
  Sys.remove (Corpus.kernel_path ~dir ~hash:(Corpus.hash_text text_b));
  match Corpus.load_all ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "load_all ignored a missing kernel file"

(* --- resume determinism: the subsystem's headline property --- *)

let campaign_run ~jobs ?sink ?resume () =
  Campaign.run ~jobs ~per_mode:2 ~modes:[ Gen_config.Basic ]
    ~config_ids:[ 1; 12; 19 ] ?sink ?resume ()

let campaign_header () =
  Campaign.journal_header ~per_mode:2 ~config_ids:[ 1; 12; 19 ]
    ~modes:[ Gen_config.Basic ] ()

let test_corpus_fsck () =
  let dir = Filename.temp_file "store_fsck" "" in
  Sys.remove dir;
  let mk i =
    let text = Printf.sprintf "__kernel void entry() { /* %d */ }\n" i in
    ( {
        Corpus.hash = Corpus.hash_text text;
        seed = i;
        mode = "basic";
        cls = "crash";
        config = i;
        opt = "-";
      },
      text )
  in
  let pairs = List.map mk [ 1; 2; 3 ] in
  (match Corpus.add_all ~dir pairs with
  | Error m -> Alcotest.fail m
  | Ok _ -> ());
  Alcotest.(check int) "healthy archive is clean" 0
    (List.length (Corpus.fsck ~dir));
  (* every damage class at once: tampered text, deleted kernel, stray
     file, re-indexed dedup key *)
  let e1, _ = List.nth pairs 0 and e2, _ = List.nth pairs 1 in
  let oc = open_out (Filename.concat dir (e1.Corpus.hash ^ ".cl")) in
  output_string oc "tampered\n";
  close_out oc;
  Sys.remove (Filename.concat dir (e2.Corpus.hash ^ ".cl"));
  let oc = open_out (Filename.concat dir (String.make 32 '0' ^ ".cl")) in
  output_string oc "orphan\n";
  close_out oc;
  let index_path = Filename.concat dir "index.jsonl" in
  let ic = open_in index_path in
  let first_line = input_line ic in
  close_in ic;
  let oc = open_out_gen [ Open_append ] 0o644 index_path in
  output_string oc (first_line ^ "\n");
  close_out oc;
  let damage = Corpus.fsck ~dir in
  let count p = List.length (List.filter p damage) in
  Alcotest.(check int) "hash mismatch found" 1
    (count (function Corpus.Hash_mismatch _ -> true | _ -> false));
  Alcotest.(check int) "missing kernel found" 1
    (count (function Corpus.Missing_kernel _ -> true | _ -> false));
  Alcotest.(check int) "orphan found" 1
    (count (function Corpus.Orphan_kernel _ -> true | _ -> false));
  Alcotest.(check int) "duplicate index entry found" 1
    (count (function Corpus.Duplicate_entry _ -> true | _ -> false));
  Alcotest.(check int) "nothing else reported" 4 (List.length damage);
  List.iter
    (fun d ->
      Alcotest.(check bool) "damage renders" true
        (String.length (Corpus.damage_to_string d) > 0))
    damage;
  Alcotest.(check int) "unreadable dir is one finding" 1
    (List.length (Corpus.fsck ~dir:(Filename.concat dir "no-such-subdir")))

let test_resume_determinism () =
  (* reference: one uninterrupted journalled run *)
  let ref_path = temp ".jsonl" in
  let w = Journal.create ~path:ref_path (campaign_header ()) in
  let collected = ref [] in
  let t_ref =
    Campaign.to_table
      (campaign_run ~jobs:2
         ~sink:(fun c ->
           collected := c :: !collected;
           Journal.write_cell w c)
         ())
  in
  Journal.commit w;
  let ref_bytes = read_file ref_path in
  let all_cells = List.rev !collected in
  let n = List.length all_cells in
  Alcotest.(check bool) "campaign produced cells" true (n >= 6);
  (* resume from assorted interruption points, at several -j: the final
     table and the rewritten journal must match the reference bytes *)
  let prefixes = List.filter (fun k -> k <= n) [ 0; 1; 5; n - 1; n ] in
  List.iter
    (fun k ->
      List.iter
        (fun jobs ->
          let path = temp ".jsonl" in
          let prefix = List.filteri (fun i _ -> i < k) all_cells in
          write_journal path (campaign_header ()) prefix;
          match Journal.resume ~path (campaign_header ()) with
          | Error e -> Alcotest.fail (Journal.error_to_string e)
          | Ok (w, replay) ->
              Alcotest.(check int) "replayed cell count" k (List.length replay);
              let t =
                Campaign.to_table
                  (campaign_run ~jobs ~sink:(Journal.write_cell w)
                     ~resume:replay ())
              in
              Journal.commit w;
              Alcotest.(check string)
                (Printf.sprintf "table after resume from %d/%d at -j %d" k n jobs)
                t_ref t;
              Alcotest.(check string)
                (Printf.sprintf "journal bytes after resume from %d/%d at -j %d"
                   k n jobs)
                ref_bytes (read_file path);
              Sys.remove path)
        [ 1; 4 ])
    prefixes;
  Sys.remove ref_path

let () =
  Alcotest.run "store"
    [
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_jsonl_rejects;
          Alcotest.test_case "checksummed lines" `Quick test_jsonl_checksum;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail recovered" `Quick test_journal_torn_tail;
          Alcotest.test_case "mid-file damage rejected" `Quick test_journal_corrupt_middle;
          Alcotest.test_case "identity mismatch rejected" `Quick test_journal_header_mismatch;
          Alcotest.test_case "missing file = fresh" `Quick test_journal_missing_file;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "add/index/verify/dedup" `Quick test_corpus;
          Alcotest.test_case "fold/load_all one-pass" `Quick test_corpus_fold;
          Alcotest.test_case "fsck finds every damage class" `Quick
            test_corpus_fsck;
        ] );
      ( "resume",
        [ Alcotest.test_case "byte-identical from any prefix" `Slow test_resume_determinism ] );
    ]
