(* Triage: crafted journals bucket exactly as the majority vote dictates,
   table1's packed records are expanded, non-regenerable campaigns are
   rejected, and the corpus round trip — archived exemplars re-read,
   regenerated from their recorded provenance and re-typechecked. *)

let cell index seed mode config opt outcomes =
  { Journal.index; seed; mode; config; opt; outcomes; note = "" }

let t4_header =
  Journal.make_header ~campaign:"table4" ~ident:[ ("seed0", "1") ] ~scale:[]

(* one BASIC kernel (seed 1) across three configs at both levels; majority
   output "A" (4 votes), one wrong-code cell, one crash cell, one timeout
   (never bucketed) *)
let crafted_cells =
  let open Outcome in
  [
    cell 0 1 "BASIC" 1 "-" [ Success "A" ];
    cell 1 1 "BASIC" 12 "-" [ Success "A" ];
    cell 2 1 "BASIC" 19 "-" [ Success "A" ];
    cell 3 1 "BASIC" 1 "+" [ Success "A" ];
    cell 4 1 "BASIC" 12 "+" [ Success "B" ];
    cell 5 1 "BASIC" 19 "+" [ Crash "signal" ];
    cell 6 1 "BASIC" 9 "-" [ Timeout ];
  ]

let expected_kernel_hash =
  let tc, _ =
    Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed:1 ()
  in
  Corpus.hash_text (Pp.program_to_string tc.Ast.prog)

let test_crafted_buckets () =
  match Triage.of_journal t4_header crafted_cells with
  | Error m -> Alcotest.fail m
  | Ok buckets ->
      Alcotest.(check (list string))
        "one wrong-code and one crash bucket" [ "crash"; "wrong-code" ]
        (List.map (fun b -> b.Triage.cls) buckets);
      List.iter
        (fun b ->
          Alcotest.(check int) "one cell each" 1 b.Triage.cells;
          Alcotest.(check int) "one kernel each" 1 b.Triage.kernels;
          Alcotest.(check string) "opt level" "+" b.Triage.opt;
          Alcotest.(check int) "exemplar seed" 1 b.Triage.exemplar_seed;
          Alcotest.(check string) "exemplar mode" "BASIC" b.Triage.exemplar_mode;
          Alcotest.(check string) "exemplar hash is the content address"
            expected_kernel_hash b.Triage.exemplar_hash)
        buckets;
      let crash = List.hd buckets and wrong = List.nth buckets 1 in
      Alcotest.(check int) "crash config" 19 crash.Triage.config;
      Alcotest.(check int) "wrong-code config" 12 wrong.Triage.config

let test_same_signature_merges () =
  (* two kernels with identical trigger signatures crashing on the same
     (config, opt) must share a bucket; the exemplar is the first witness *)
  let seeds = List.init 30 (fun i -> i + 1) in
  let sig_of seed =
    let tc, _ =
      Generate.generate ~cfg:(Gen_config.scaled Gen_config.Basic) ~seed ()
    in
    Triage.signature_of_features (Features.of_testcase tc)
  in
  let by_sig = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let g = sig_of s in
      Hashtbl.replace by_sig g (s :: Option.value ~default:[] (Hashtbl.find_opt by_sig g)))
    seeds;
  match
    Hashtbl.fold
      (fun _ ss acc -> if List.length ss >= 2 && acc = None then Some (List.rev ss) else acc)
      by_sig None
  with
  | None -> Alcotest.fail "no two BASIC seeds share a signature in 30 tries"
  | Some (s1 :: s2 :: _) ->
      let cells =
        [
          cell 0 s1 "BASIC" 7 "-" [ Outcome.Crash "x" ];
          cell 1 s2 "BASIC" 7 "-" [ Outcome.Crash "y" ];
        ]
      in
      (match Triage.of_journal t4_header cells with
      | Error m -> Alcotest.fail m
      | Ok [ b ] ->
          Alcotest.(check int) "both cells merged" 2 b.Triage.cells;
          Alcotest.(check int) "two distinct kernels" 2 b.Triage.kernels;
          Alcotest.(check int) "first witness is the exemplar" s1
            b.Triage.exemplar_seed
      | Ok bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs))
  | Some _ -> assert false

let test_table1_expansion () =
  let h =
    Journal.make_header ~campaign:"table1" ~ident:[ ("seed0", "1") ] ~scale:[]
  in
  (* opt "*" packs both levels into one record: the bucket keys must still
     carry "-" / "+" separately *)
  let open Outcome in
  let cells =
    [
      cell 0 1 "BASIC" 1 "*" [ Success "A"; Success "A" ];
      cell 1 1 "BASIC" 12 "*" [ Success "A"; Build_failure "d" ];
      cell 2 1 "BASIC" 19 "*" [ Success "A"; Success "A" ];
    ]
  in
  match Triage.of_journal h cells with
  | Error m -> Alcotest.fail m
  | Ok [ b ] ->
      Alcotest.(check string) "class" "build-failure" b.Triage.cls;
      Alcotest.(check string) "split to the opt-on level" "+" b.Triage.opt;
      Alcotest.(check int) "config" 12 b.Triage.config
  | Ok bs -> Alcotest.failf "expected one bucket, got %d" (List.length bs)

let test_untriageable_campaigns () =
  List.iter
    (fun campaign ->
      let h = Journal.make_header ~campaign ~ident:[] ~scale:[] in
      match Triage.of_journal h [] with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "triaged a %s journal" campaign)
    [ "table3"; "table5"; "nonsense" ]

(* --- end-to-end: real campaign -> triage -> corpus -> re-typecheck --- *)

let test_campaign_corpus_roundtrip () =
  let header =
    Campaign.journal_header ~per_mode:2 ~config_ids:[ 1; 12; 19 ]
      ~modes:[ Gen_config.Basic; Gen_config.All ] ()
  in
  let collected = ref [] in
  ignore
    (Campaign.run ~jobs:2 ~per_mode:2 ~config_ids:[ 1; 12; 19 ]
       ~modes:[ Gen_config.Basic; Gen_config.All ]
       ~sink:(fun c -> collected := c :: !collected)
       ());
  match Triage.of_journal header (List.rev !collected) with
  | Error m -> Alcotest.fail m
  | Ok buckets ->
      Alcotest.(check bool) "tiny campaign yields buckets" true (buckets <> []);
      let entries = Triage.corpus_entries buckets in
      Alcotest.(check int) "one corpus entry per bucket" (List.length buckets)
        (List.length entries);
      let dir = Filename.temp_file "triage_corpus" "" in
      Sys.remove dir;
      (match Corpus.add_all ~dir entries with
      | Error m -> Alcotest.fail m
      | Ok _ -> ());
      let loaded =
        match Corpus.load_all ~dir with Ok es -> es | Error m -> Alcotest.fail m
      in
      Alcotest.(check bool) "index populated" true (loaded <> []);
      List.iter
        (fun ((e : Corpus.entry), stored) ->
          (* stored bytes still match their content address *)
          (match Corpus.verify ~dir e with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          (* the recorded provenance regenerates the archived text *)
          let mode =
            match Gen_config.mode_of_string e.Corpus.mode with
            | Some m -> m
            | None -> Alcotest.failf "bad mode %s in index" e.Corpus.mode
          in
          let tc, _ =
            Generate.generate ~cfg:(Gen_config.scaled mode) ~seed:e.Corpus.seed ()
          in
          Alcotest.(check string) "regenerated kernel prints identically"
            stored
            (Pp.program_to_string tc.Ast.prog);
          (* and the archived kernel is well-typed *)
          match Typecheck.check_program tc.Ast.prog with
          | Ok () -> ()
          | Error m -> Alcotest.failf "exemplar does not typecheck: %s" m)
        loaded

let () =
  Alcotest.run "triage"
    [
      ( "buckets",
        [
          Alcotest.test_case "crafted majority" `Quick test_crafted_buckets;
          Alcotest.test_case "same signature merges" `Quick test_same_signature_merges;
          Alcotest.test_case "table1 expansion" `Quick test_table1_expansion;
          Alcotest.test_case "untriageable campaigns" `Quick test_untriageable_campaigns;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "campaign exemplars re-typecheck" `Slow
            test_campaign_corpus_roundtrip;
        ] );
    ]
